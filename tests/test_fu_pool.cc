/** @file Unit tests for the functional-unit latency table (Table 3). */

#include <gtest/gtest.h>

#include "uarch/fu_pool.hh"

namespace tpred
{
namespace
{

TEST(FuPool, SingleCycleClasses)
{
    EXPECT_EQ(executionLatency(InstClass::Integer), 1u);
    EXPECT_EQ(executionLatency(InstClass::BitField), 1u);
    EXPECT_EQ(executionLatency(InstClass::Branch), 1u);
    EXPECT_EQ(executionLatency(InstClass::Store), 1u);
    EXPECT_EQ(executionLatency(InstClass::Load), 1u);
}

TEST(FuPool, MultiCycleClasses)
{
    EXPECT_EQ(executionLatency(InstClass::FpAdd), 3u);
    EXPECT_EQ(executionLatency(InstClass::Mul), 3u);
    EXPECT_EQ(executionLatency(InstClass::Div), 8u);
}

TEST(FuPool, TableMatchesAccessor)
{
    const auto &table = latencyTable();
    ASSERT_EQ(table.size(), kNumInstClasses);
    for (size_t i = 0; i < table.size(); ++i)
        EXPECT_EQ(table[i],
                  executionLatency(static_cast<InstClass>(i)));
}

TEST(FuPool, AllLatenciesPositive)
{
    for (unsigned lat : latencyTable())
        EXPECT_GE(lat, 1u);
}

} // namespace
} // namespace tpred
