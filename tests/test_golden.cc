/**
 * @file
 * Golden regression tests: the exact (seed 1, 100k instructions)
 * misprediction rates of the BTB baseline and the default target
 * cache, pinned with a small tolerance.
 *
 * These exist to catch *unintended* behaviour drift — a changed hash,
 * an LRU bug, a workload edit — not to assert the numbers are "right".
 * If a deliberate change moves them, re-run tests/record_golden (see
 * the comment at the bottom) and update the table knowingly.
 */

#include <gtest/gtest.h>

#include "harness/paper_tables.hh"

namespace tpred
{
namespace
{

struct Golden
{
    const char *workload;
    double btbMiss;
    double taglessMiss;
};

// Recorded at 100,000 instructions, seed 1.
constexpr Golden kGolden[] = {
    {"compress", 0.2497, 0.2633},
    {"gcc", 0.8198, 0.5963},
    {"go", 0.6523, 0.8213},
    {"ijpeg", 0.1323, 0.1670},
    {"m88ksim", 0.5006, 0.2494},
    {"perl", 0.8467, 0.3989},
    {"vortex", 0.1900, 0.1265},
    {"xlisp", 0.4816, 0.2454},
    {"cpp-virtual", 0.6691, 0.6229},
};

constexpr double kTolerance = 0.002;  // determinism, not statistics

class GoldenRates : public ::testing::TestWithParam<Golden>
{
};

TEST_P(GoldenRates, BtbBaselineUnchanged)
{
    const Golden &golden = GetParam();
    SharedTrace trace = recordWorkload(golden.workload, 100000);
    double miss = runAccuracy(trace, baselineConfig())
                      .indirectJumps.missRate();
    EXPECT_NEAR(miss, golden.btbMiss, kTolerance) << golden.workload;
}

TEST_P(GoldenRates, TaglessCacheUnchanged)
{
    const Golden &golden = GetParam();
    SharedTrace trace = recordWorkload(golden.workload, 100000);
    double miss = runAccuracy(trace, taglessGshare())
                      .indirectJumps.missRate();
    EXPECT_NEAR(miss, golden.taglessMiss, kTolerance)
        << golden.workload;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, GoldenRates,
                         ::testing::ValuesIn(kGolden),
                         [](const auto &info) {
                             std::string name = info.param.workload;
                             for (auto &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

// To regenerate: build any small main that prints
//   runAccuracy(recordWorkload(name, 100000), config)
// for both configs across allWorkloadNames(), then paste the values
// into kGolden above.

} // namespace
} // namespace tpred
