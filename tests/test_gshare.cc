/** @file Unit tests for the gshare direction predictor. */

#include <gtest/gtest.h>

#include "bpred/gshare.hh"

namespace tpred
{
namespace
{

TEST(GShare, InitialPredictionIsWeaklyNotTaken)
{
    GShare gshare(10);
    EXPECT_FALSE(gshare.predict(0x100, 0));
}

TEST(GShare, LearnsBias)
{
    GShare gshare(10);
    for (int i = 0; i < 4; ++i)
        gshare.update(0x100, 0, true);
    EXPECT_TRUE(gshare.predict(0x100, 0));
    for (int i = 0; i < 8; ++i)
        gshare.update(0x100, 0, false);
    EXPECT_FALSE(gshare.predict(0x100, 0));
}

TEST(GShare, HistoryDisambiguates)
{
    GShare gshare(10);
    // Same pc, two histories with opposite outcomes.
    for (int i = 0; i < 4; ++i) {
        gshare.update(0x100, 0b1010, true);
        gshare.update(0x100, 0b0101, false);
    }
    EXPECT_TRUE(gshare.predict(0x100, 0b1010));
    EXPECT_FALSE(gshare.predict(0x100, 0b0101));
}

TEST(GShare, LearnsAlternatingPatternWithHistory)
{
    // A branch alternating T/N is perfectly predictable once the
    // history register distinguishes the two phases.
    GShare gshare(12);
    uint64_t history = 0;
    int correct = 0, total = 0;
    bool outcome = false;
    for (int i = 0; i < 2000; ++i) {
        outcome = !outcome;
        if (i > 100) {
            ++total;
            correct += gshare.predict(0x40c, history) == outcome;
        }
        gshare.update(0x40c, history, outcome);
        history = (history << 1 | outcome) & 0xfff;
    }
    EXPECT_GT(correct, total * 99 / 100);
}

TEST(GShare, TwoBranchesWithDifferentBiases)
{
    GShare gshare(12);
    for (int i = 0; i < 8; ++i) {
        gshare.update(0x100, 0, true);
        gshare.update(0x2000, 0, false);
    }
    EXPECT_TRUE(gshare.predict(0x100, 0));
    EXPECT_FALSE(gshare.predict(0x2000, 0));
}

} // namespace
} // namespace tpred
