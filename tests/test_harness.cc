/** @file Integration tests for the experiment harness. */

#include <gtest/gtest.h>

#include "harness/paper_tables.hh"

namespace tpred
{
namespace
{

TEST(Harness, RecordWorkloadIsDeterministic)
{
    SharedTrace a = recordWorkload("compress", 5000);
    SharedTrace b = recordWorkload("compress", 5000);
    ASSERT_EQ(a.size(), b.size());
    const std::vector<MicroOp> a_ops = a.decodeOps();
    const std::vector<MicroOp> b_ops = b.decodeOps();
    for (size_t i = 0; i < a.size(); i += 251)
        EXPECT_EQ(a_ops[i].pc, b_ops[i].pc);
}

TEST(Harness, SharedTraceOpensIndependentReplays)
{
    SharedTrace trace = recordWorkload("compress", 2000);
    auto s1 = trace.open();
    auto s2 = trace.open();
    MicroOp a, b;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(s1->next(a));
        ASSERT_TRUE(s2->next(b));
        EXPECT_EQ(a.pc, b.pc);
    }
}

TEST(Harness, BuildStackVariants)
{
    EXPECT_EQ(buildStack(baselineConfig()).predictor, nullptr);
    EXPECT_NE(buildStack(taglessGshare()).predictor, nullptr);
    EXPECT_NE(buildStack(taggedConfig(TaggedIndexScheme::HistoryXor, 4))
                  .predictor,
              nullptr);
    EXPECT_NE(buildStack(cascadedConfig()).predictor, nullptr);
    EXPECT_NE(buildStack(oracleConfig()).predictor, nullptr);
}

TEST(Harness, ConfigDescriptions)
{
    EXPECT_EQ(baselineConfig().describe(), "btb-only");
    EXPECT_NE(taglessGAg().describe().find("GAg"), std::string::npos);
    EXPECT_NE(taglessGAs(7, 2).describe().find("GAs(7,2)"),
              std::string::npos);
    EXPECT_NE(taggedConfig(TaggedIndexScheme::HistoryXor, 8)
                  .describe()
                  .find("8w"),
              std::string::npos);
    EXPECT_EQ(oracleConfig().describe(), "oracle");
}

TEST(Harness, AccuracyRunsAndCountsEverything)
{
    SharedTrace trace = recordWorkload("xlisp", 20000);
    FrontendStats stats = runAccuracy(trace, baselineConfig());
    EXPECT_EQ(stats.instructions, trace.size());
    EXPECT_GT(stats.indirectJumps.total(), 0u);
    EXPECT_GT(stats.condDirection.total(), 0u);
}

TEST(Harness, AccuracyIsDeterministicAcrossRuns)
{
    SharedTrace trace = recordWorkload("m88ksim", 20000);
    FrontendStats a = runAccuracy(trace, taglessGshare());
    FrontendStats b = runAccuracy(trace, taglessGshare());
    EXPECT_EQ(a.indirectJumps.misses(), b.indirectJumps.misses());
    EXPECT_EQ(a.allBranches.misses(), b.allBranches.misses());
}

TEST(Harness, TimingProducesCycles)
{
    SharedTrace trace = recordWorkload("compress", 20000);
    CoreResult result = runTiming(trace, baselineConfig());
    EXPECT_EQ(result.instructions, trace.size());
    EXPECT_GT(result.cycles, trace.size() / 8);  // width bound
    EXPECT_GT(result.ipc(), 0.1);
    EXPECT_LT(result.ipc(), 8.0);
}

TEST(Harness, OracleTimingIsFastest)
{
    SharedTrace trace = recordWorkload("perl", 30000);
    CoreResult base = runTiming(trace, baselineConfig());
    CoreResult oracle = runTiming(trace, oracleConfig());
    EXPECT_LT(oracle.cycles, base.cycles);
}

TEST(Harness, ReductionOverBaselineMatchesManualComputation)
{
    SharedTrace trace = recordWorkload("xlisp", 20000);
    CoreResult base = runTiming(trace, baselineConfig());
    CoreResult tc = runTiming(trace, taglessGshare());
    double expected = execTimeReduction(base.cycles, tc.cycles);
    double via_helper = reductionOver(base.cycles, trace,
                                      taglessGshare());
    EXPECT_DOUBLE_EQ(expected, via_helper);
}

TEST(Harness, TwoBitFrontendUsesTwoBitStrategy)
{
    EXPECT_EQ(twoBitBtbFrontend().btb.l1.strategy,
              BtbUpdateStrategy::TwoBit);
    EXPECT_FALSE(twoBitBtbFrontend().btb.twoLevel);
}

TEST(Harness, TwoLevelFrontendGeometry)
{
    const FrontendConfig fe = twoLevelBtbFrontend();
    EXPECT_TRUE(fe.btb.twoLevel);
    EXPECT_EQ(fe.btb.l1.entries(), 64u);
    EXPECT_EQ(fe.btb.l2.entries(), 8192u);
    EXPECT_EQ(fe.btb.missPenalty, 2u);
    EXPECT_FALSE(smallBtbFrontend().btb.twoLevel);
    EXPECT_EQ(smallBtbFrontend().btb.l1.entries(), 64u);
}

TEST(Harness, HistorySpecBuilders)
{
    EXPECT_EQ(patternHistory(16).lengthBits, 16u);
    HistorySpec path = pathGlobal(PathFilter::CallRet, 9, 2, 4);
    EXPECT_EQ(path.kind, HistoryKind::PathGlobal);
    EXPECT_EQ(path.filter, PathFilter::CallRet);
    EXPECT_EQ(path.path.bitsPerTarget, 2u);
    EXPECT_EQ(path.path.addrBitOffset, 4u);
    EXPECT_EQ(pathPerAddress().kind, HistoryKind::PathPerAddress);
}

TEST(Harness, ResolveOpsPrecedence)
{
    char prog[] = "prog";
    char arg[] = "12345";
    char *argv[] = {prog, arg};
    EXPECT_EQ(resolveOps(2, argv, 99), 12345u);
    EXPECT_EQ(resolveOps(1, argv, 99), 99u);
}

} // namespace
} // namespace tpred
