/** @file Unit tests for the bucketed histogram. */

#include <algorithm>

#include <gtest/gtest.h>

#include "common/histogram.hh"

namespace tpred
{
namespace
{

TEST(Histogram, EmptyHistogram)
{
    Histogram hist(10);
    EXPECT_EQ(hist.total(), 0u);
    EXPECT_DOUBLE_EQ(hist.fraction(3), 0.0);
    EXPECT_DOUBLE_EQ(hist.overflowFraction(), 0.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(Histogram, BasicCounts)
{
    Histogram hist(5);
    hist.add(1);
    hist.add(1);
    hist.add(3, 4);
    EXPECT_EQ(hist.total(), 6u);
    EXPECT_EQ(hist.count(1), 2u);
    EXPECT_EQ(hist.count(3), 4u);
    EXPECT_EQ(hist.count(0), 0u);
}

TEST(Histogram, OverflowBucket)
{
    Histogram hist(30);
    hist.add(29);
    hist.add(30);
    hist.add(1000, 2);
    EXPECT_EQ(hist.overflow(), 3u);
    EXPECT_EQ(hist.count(29), 1u);
    // Reading any key >= capacity reads the overflow bucket.
    EXPECT_EQ(hist.count(64), 3u);
}

TEST(Histogram, Fractions)
{
    Histogram hist(4);
    hist.add(0, 1);
    hist.add(1, 3);
    EXPECT_DOUBLE_EQ(hist.fraction(0), 0.25);
    EXPECT_DOUBLE_EQ(hist.fraction(1), 0.75);
}

TEST(Histogram, MeanWithOverflowAtCapacity)
{
    Histogram hist(10);
    hist.add(2, 2);
    hist.add(50, 2);  // counted at 10 (capacity) in the mean
    EXPECT_DOUBLE_EQ(hist.mean(), (2.0 * 2 + 10.0 * 2) / 4.0);
}

TEST(Histogram, RenderContainsBucketsAndPercentages)
{
    Histogram hist(5);
    hist.add(2, 3);
    hist.add(9, 1);
    std::string out = hist.render("title");
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("75.00%"), std::string::npos);
    EXPECT_NE(out.find(">="), std::string::npos);
}

TEST(Histogram, RenderSkipsEmptyBuckets)
{
    Histogram hist(5);
    hist.add(1);
    std::string out = hist.render("t");
    // Only one bucket row plus the title line.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

} // namespace
} // namespace tpred
