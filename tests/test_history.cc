/** @file Unit tests for pattern and path history registers. */

#include <gtest/gtest.h>

#include "bpred/history.hh"
#include "test_util.hh"

namespace tpred
{
namespace
{

TEST(PatternHistory, ShiftsNewestIntoLsb)
{
    PatternHistory hist(4);
    hist.update(true);
    EXPECT_EQ(hist.value(), 0b1u);
    hist.update(false);
    EXPECT_EQ(hist.value(), 0b10u);
    hist.update(true);
    EXPECT_EQ(hist.value(), 0b101u);
}

TEST(PatternHistory, TruncatesToLength)
{
    PatternHistory hist(2);
    for (int i = 0; i < 8; ++i)
        hist.update(true);
    EXPECT_EQ(hist.value(), 0b11u);
    hist.update(false);
    EXPECT_EQ(hist.value(), 0b10u);
}

TEST(PatternHistory, Reset)
{
    PatternHistory hist(8);
    hist.update(true);
    hist.reset();
    EXPECT_EQ(hist.value(), 0u);
}

TEST(PathSpec, RecordedBitsSelectsOffsetAndWidth)
{
    PathSpec spec;
    spec.bitsPerTarget = 3;
    spec.addrBitOffset = 2;
    EXPECT_EQ(spec.recordedBits(0b10100), 0b101u);
    spec.addrBitOffset = 4;
    EXPECT_EQ(spec.recordedBits(0b10100), 0b001u);
}

TEST(PathRegister, ShiftsTargetBits)
{
    PathSpec spec;
    spec.lengthBits = 6;
    spec.bitsPerTarget = 2;
    spec.addrBitOffset = 2;
    PathRegister reg(spec);
    reg.record(0x4);   // bits[3:2] = 01
    reg.record(0x8);   // bits[3:2] = 10
    EXPECT_EQ(reg.value(), 0b0110u);
    reg.record(0xc);   // bits[3:2] = 11
    EXPECT_EQ(reg.value(), 0b011011u);
    reg.record(0x0);   // shifts out the oldest
    EXPECT_EQ(reg.value(), 0b101100u);
}

TEST(GlobalPathHistory, ControlFilterRecordsTakenControlOnly)
{
    PathSpec spec{9, 1, 2};
    GlobalPathHistory hist(spec, PathFilter::Control);
    // Not-taken conditional does not redirect: not recorded.
    hist.observe(test::branchOp(0x100, BranchKind::CondDirect, 0x204,
                                /*taken=*/false));
    EXPECT_EQ(hist.value(), 0u);
    // Taken conditional to a target with bit 2 set.
    hist.observe(test::branchOp(0x100, BranchKind::CondDirect, 0x204));
    EXPECT_EQ(hist.value(), 1u);
    // Non-branch never recorded.
    hist.observe(test::plainOp(0x104));
    EXPECT_EQ(hist.value(), 1u);
}

TEST(GlobalPathHistory, BranchFilterIgnoresIndirect)
{
    PathSpec spec{9, 1, 2};
    GlobalPathHistory hist(spec, PathFilter::Branch);
    hist.observe(test::indirectOp(0x100, 0x204));
    EXPECT_EQ(hist.value(), 0u);
    hist.observe(test::branchOp(0x100, BranchKind::CondDirect, 0x204));
    EXPECT_EQ(hist.value(), 1u);
}

TEST(GlobalPathHistory, CallRetFilter)
{
    PathSpec spec{9, 1, 2};
    GlobalPathHistory hist(spec, PathFilter::CallRet);
    hist.observe(test::branchOp(0x100, BranchKind::CondDirect, 0x204));
    EXPECT_EQ(hist.value(), 0u);
    hist.observe(test::branchOp(0x100, BranchKind::Call, 0x204));
    EXPECT_EQ(hist.value(), 1u);
    hist.observe(test::branchOp(0x200, BranchKind::Return, 0x104));
    EXPECT_EQ(hist.value(), 0b11u);
}

TEST(GlobalPathHistory, IndJmpFilter)
{
    PathSpec spec{9, 1, 2};
    GlobalPathHistory hist(spec, PathFilter::IndJmp);
    hist.observe(test::branchOp(0x100, BranchKind::Call, 0x204));
    EXPECT_EQ(hist.value(), 0u);
    hist.observe(test::indirectOp(0x100, 0x204));
    EXPECT_EQ(hist.value(), 1u);
}

TEST(PerAddressPathHistory, SeparateRegistersPerSite)
{
    PathSpec spec{9, 1, 2};
    PerAddressPathHistory hist(spec);
    hist.observe(test::indirectOp(0x100, 0x204));
    hist.observe(test::indirectOp(0x200, 0x200));
    EXPECT_EQ(hist.valueFor(0x100), 1u);
    EXPECT_EQ(hist.valueFor(0x200), 0u);
    EXPECT_EQ(hist.valueFor(0x300), 0u);  // unseen site
    EXPECT_EQ(hist.registers(), 2u);
}

TEST(PerAddressPathHistory, RecordsOwnTargetsOnly)
{
    PathSpec spec{4, 1, 2};
    PerAddressPathHistory hist(spec);
    hist.observe(test::indirectOp(0x100, 0x204));
    hist.observe(test::indirectOp(0x200, 0x204));
    hist.observe(test::indirectOp(0x100, 0x204));
    EXPECT_EQ(hist.valueFor(0x100), 0b11u);
    EXPECT_EQ(hist.valueFor(0x200), 0b1u);
}

TEST(HistoryTracker, PatternKind)
{
    HistorySpec spec;
    spec.kind = HistoryKind::Pattern;
    spec.lengthBits = 4;
    HistoryTracker tracker(spec);
    tracker.observe(test::branchOp(0x100, BranchKind::CondDirect,
                                   0x200));
    tracker.observe(test::indirectOp(0x104, 0x300));  // ignored
    EXPECT_EQ(tracker.valueFor(0x104), 1u);
    // Pattern history is global: same value for any pc.
    EXPECT_EQ(tracker.valueFor(0xdead), 1u);
}

TEST(HistoryTracker, PathPerAddressKind)
{
    HistorySpec spec;
    spec.kind = HistoryKind::PathPerAddress;
    spec.path = PathSpec{9, 1, 2};
    HistoryTracker tracker(spec);
    tracker.observe(test::indirectOp(0x100, 0x204));
    EXPECT_EQ(tracker.valueFor(0x100), 1u);
    EXPECT_EQ(tracker.valueFor(0x200), 0u);
}

TEST(HistoryTracker, Reset)
{
    HistorySpec spec;
    spec.kind = HistoryKind::Pattern;
    spec.lengthBits = 4;
    HistoryTracker tracker(spec);
    tracker.observe(test::branchOp(0x100, BranchKind::CondDirect,
                                   0x200));
    tracker.reset();
    EXPECT_EQ(tracker.valueFor(0x100), 0u);
}

TEST(HistorySpec, Describe)
{
    HistorySpec pattern;
    pattern.kind = HistoryKind::Pattern;
    pattern.lengthBits = 9;
    EXPECT_EQ(pattern.describe(), "pattern(9)");

    HistorySpec path;
    path.kind = HistoryKind::PathGlobal;
    path.filter = PathFilter::IndJmp;
    EXPECT_NE(path.describe().find("ind jmp"), std::string::npos);
}

} // namespace
} // namespace tpred
