/** @file Tests for the interference/conflict statistics (paper §5). */

#include <gtest/gtest.h>

#include "core/tagged_target_cache.hh"
#include "core/tagless_target_cache.hh"

namespace tpred
{
namespace
{

TEST(Interference, ColdProbesAreNotInterference)
{
    TaglessTargetCache cache(TaglessConfig{});
    (void)cache.predict(0x100, 0);
    EXPECT_EQ(cache.stats().probes, 1u);
    EXPECT_EQ(cache.stats().crossBranchProbes, 0u);
}

TEST(Interference, OwnEntryIsNotInterference)
{
    TaglessTargetCache cache(TaglessConfig{});
    cache.update(0x100, 5, 0x2000);
    (void)cache.predict(0x100, 5);
    EXPECT_EQ(cache.stats().crossBranchProbes, 0u);
}

TEST(Interference, CrossBranchProbeCounted)
{
    // GAg: every branch shares every entry, so a second branch with
    // the same history reads the first branch's entry.
    TaglessConfig config;
    config.scheme = TaglessIndexScheme::GAg;
    TaglessTargetCache cache(config);
    cache.update(0x100, 5, 0x2000);
    (void)cache.predict(0x5550, 5);
    EXPECT_EQ(cache.stats().crossBranchProbes, 1u);
    EXPECT_GT(cache.stats().interferenceRate(), 0.0);
}

TEST(Interference, GAgInterferesMoreThanGshareUnderTwoBranches)
{
    auto run = [](TaglessIndexScheme scheme) {
        TaglessConfig config;
        config.scheme = scheme;
        TaglessTargetCache cache(config);
        for (uint64_t h = 0; h < 400; ++h) {
            for (uint64_t pc : {0x100ull, 0x2224ull}) {
                (void)cache.predict(pc, h & 0x1ff);
                cache.update(pc, h & 0x1ff, 0x4000 + pc);
            }
        }
        return cache.stats().interferenceRate();
    };
    EXPECT_GT(run(TaglessIndexScheme::GAg),
              run(TaglessIndexScheme::Gshare));
}

TEST(Interference, TaggedConflictEvictionsCountOnlyDisplacements)
{
    TaggedConfig config;
    config.entries = 2;
    config.ways = 2;  // one set
    TaggedTargetCache cache(config);
    cache.update(0x100, 0, 0x1);
    cache.update(0x200, 0, 0x2);
    EXPECT_EQ(cache.conflictEvictions(), 0u);  // filled empty ways
    cache.update(0x300, 0, 0x3);
    EXPECT_EQ(cache.conflictEvictions(), 1u);  // displaced a live one
    cache.update(0x300, 0, 0x4);               // re-train, no eviction
    EXPECT_EQ(cache.conflictEvictions(), 1u);
}

TEST(Interference, AssociativityReducesConflictEvictions)
{
    auto run = [](unsigned ways) {
        TaggedConfig config;
        config.scheme = TaggedIndexScheme::Address;
        config.entries = 64;
        config.ways = ways;
        TaggedTargetCache cache(config);
        // One jump, 8 history contexts, many rounds: the Address
        // scheme funnels everything into one set.
        for (int round = 0; round < 100; ++round)
            for (uint64_t h = 0; h < 8; ++h)
                cache.update(0x100, h, 0x4000 + h * 8);
        return cache.conflictEvictions();
    };
    EXPECT_GT(run(1), run(4));
    EXPECT_EQ(run(8), 0u);  // 8 contexts fit in 8 ways
}

} // namespace
} // namespace tpred
