/** @file Unit tests for the ITTAGE-style predictor extension. */

#include <gtest/gtest.h>

#include "core/ittage.hh"

namespace tpred
{
namespace
{

IttageConfig
tiny()
{
    IttageConfig config;
    config.baseEntries = 64;
    config.tableBits = 6;
    config.historyLengths = {4, 8, 16};
    return config;
}

TEST(Ittage, AbstainsWhenNeverSeen)
{
    IttagePredictor pred(tiny());
    EXPECT_FALSE(pred.predict(0x100, 0).has_value());
}

TEST(Ittage, BaseTableLearnsLastTarget)
{
    IttagePredictor pred(tiny());
    pred.update(0x100, 0, 0x2000);
    EXPECT_EQ(pred.predict(0x100, 0).value(), 0x2000u);
}

TEST(Ittage, LearnsHistoryCorrelatedTargets)
{
    // Alternating target keyed by a history bit: after warmup the
    // tagged components disambiguate what the base table cannot.
    IttagePredictor pred(tiny());
    int wrong = 0;
    uint64_t history = 0;
    for (int i = 0; i < 600; ++i) {
        const bool phase = (i & 1) != 0;
        history = (history << 1 | phase) & 0xffffffff;
        const uint64_t target = phase ? 0x4000 : 0x5000;
        auto p = pred.predict(0x100, history);
        if (i > 300)
            wrong += !(p && *p == target);
        pred.update(0x100, history, target);
    }
    EXPECT_LT(wrong, 15);
}

TEST(Ittage, MonomorphicJumpStaysCheap)
{
    IttagePredictor pred(tiny());
    int wrong = 0;
    for (int i = 0; i < 200; ++i) {
        const uint64_t history = static_cast<uint64_t>(i) * 0x9e37;
        auto p = pred.predict(0x100, history);
        if (i > 4)
            wrong += !(p && *p == 0x2000u);
        pred.update(0x100, history, 0x2000);
    }
    // Random histories, but the base table covers the stable target.
    EXPECT_LT(wrong, 10);
}

TEST(Ittage, PhaseChangeRecoversQuickly)
{
    // A jump that is monomorphic per phase with random histories:
    // the base table must keep providing; phase switches should cost
    // a bounded number of misses, not a re-learning storm.
    IttagePredictor pred(tiny());
    uint64_t h = 12345;
    int wrong_after_warm = 0;
    for (int phase = 0; phase < 10; ++phase) {
        const uint64_t target = 0x4000 + phase * 0x100;
        for (int i = 0; i < 100; ++i) {
            h = h * 6364136223846793005ull + 1442695ull;
            const uint64_t history = h >> 32;
            auto p = pred.predict(0x100, history);
            if (i > 20)
                wrong_after_warm += !(p && *p == target);
            pred.update(0x100, history, target);
        }
    }
    // 10 phases x 79 scored dispatches; allow generous slack.
    EXPECT_LT(wrong_after_warm, 160);
}

TEST(Ittage, DistinguishesJumps)
{
    // PCs chosen to hit different base-table sets (64 entries).
    IttagePredictor pred(tiny());
    pred.update(0x100, 0, 0x2000);
    pred.update(0x104, 0, 0x3000);
    EXPECT_EQ(pred.predict(0x100, 0).value(), 0x2000u);
    EXPECT_EQ(pred.predict(0x104, 0).value(), 0x3000u);
}

TEST(Ittage, BaseTableAliasingIsAcceptedBehaviour)
{
    // 0x100 and 0x900 share a base-table set in the tiny geometry;
    // with no history signal the later update wins — a structural
    // hazard, not a bug.
    IttagePredictor pred(tiny());
    pred.update(0x100, 0, 0x2000);
    pred.update(0x900, 0, 0x3000);
    EXPECT_EQ(pred.predict(0x900, 0).value(), 0x3000u);
}

TEST(Ittage, DescribeAndCost)
{
    IttagePredictor pred(tiny());
    EXPECT_NE(pred.describe().find("ittage"), std::string::npos);
    EXPECT_GT(pred.costBits(), 0u);
    EXPECT_DOUBLE_EQ(pred.taggedShare(), 0.0);
}

TEST(Ittage, TaggedShareGrowsWhenHistoryMatters)
{
    IttagePredictor pred(tiny());
    uint64_t history = 0;
    for (int i = 0; i < 400; ++i) {
        const bool phase = (i & 1) != 0;
        history = (history << 1 | phase) & 0xffffffff;
        (void)pred.predict(0x100, history);
        pred.update(0x100, history, phase ? 0x4000 : 0x5000);
    }
    EXPECT_GT(pred.taggedShare(), 0.3);
}

} // namespace
} // namespace tpred
