/**
 * @file
 * Tests for the obs metrics registry and run-report emitter: sharded
 * counter exactness under the thread pool, deterministic-counter
 * equality between serial and parallel schedules, the registry's
 * registration contract, and byte-stable RunReport JSON (golden
 * serialization, and a Table 4 run reproduced byte-identically after
 * timing masking).  Runs under `ctest -L tsan` in a
 * TPRED_SANITIZE=thread build.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "harness/paper_tables.hh"
#include "harness/parallel_runner.hh"
#include "harness/trace_cache.hh"
#include "obs/metrics.hh"
#include "obs/run_report.hh"

namespace tpred
{
namespace
{

TEST(Metrics, CounterAccumulatesAndSnapshots)
{
    obs::MetricsRegistry reg;
    obs::Counter c = reg.counter("test.count");
    c.inc();
    c.inc(41);
    const obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.count("test.count"), 1u);
    EXPECT_EQ(snap.counters.at("test.count"), 42u);
    EXPECT_TRUE(snap.runtime.empty());
}

TEST(Metrics, RegistrationIsIdempotentByName)
{
    obs::MetricsRegistry reg;
    obs::Counter a = reg.counter("same");
    obs::Counter b = reg.counter("same");
    a.inc(2);
    b.inc(3);
    EXPECT_EQ(reg.snapshot().counters.at("same"), 5u);
}

TEST(Metrics, RuntimeKindLandsInRuntimeSection)
{
    obs::MetricsRegistry reg;
    reg.counter("det").inc(1);
    reg.counter("sched", obs::MetricKind::Runtime).inc(7);
    const obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.count("sched"), 0u);
    EXPECT_EQ(snap.runtime.at("sched"), 7u);
    EXPECT_EQ(snap.counters.at("det"), 1u);
}

TEST(Metrics, KindMismatchOnReregistrationThrows)
{
    obs::MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.counter("x", obs::MetricKind::Runtime),
                 std::logic_error);
    reg.gauge("g");
    EXPECT_THROW(reg.counter("g"), std::logic_error);
}

TEST(Metrics, GaugeSetAndSetMax)
{
    obs::MetricsRegistry reg;
    obs::Gauge g = reg.gauge("g");
    g.set(10);
    g.set(4);
    EXPECT_EQ(reg.snapshot().gauges.at("g"), 4u);
    g.setMax(2);
    EXPECT_EQ(reg.snapshot().gauges.at("g"), 4u);
    g.setMax(9);
    EXPECT_EQ(reg.snapshot().gauges.at("g"), 9u);
}

TEST(Metrics, TimerAggregatesSamples)
{
    obs::MetricsRegistry reg;
    obs::Timer t = reg.timer("t");
    t.record(5, 3);
    t.record(7, 2);
    const obs::TimerValue v = reg.snapshot().timers.at("t");
    EXPECT_EQ(v.count, 2u);
    EXPECT_EQ(v.wallNs, 12u);
    EXPECT_EQ(v.cpuNs, 5u);
}

TEST(Metrics, ScopedTimerRecordsOneSample)
{
    obs::MetricsRegistry reg;
    obs::Timer t = reg.timer("scope");
    {
        obs::ScopedTimer timed(t);
    }
    EXPECT_EQ(reg.snapshot().timers.at("scope").count, 1u);
}

TEST(Metrics, ResetZeroesEverything)
{
    obs::MetricsRegistry reg;
    reg.counter("c").inc(9);
    reg.gauge("g").set(9);
    reg.timer("t").record(9, 9);
    reg.reset();
    const obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("c"), 0u);
    EXPECT_EQ(snap.gauges.at("g"), 0u);
    EXPECT_EQ(snap.timers.at("t").count, 0u);
}

TEST(Metrics, HandleOutlivingRegistryIsHarmless)
{
    obs::Counter stale;
    {
        auto reg = std::make_unique<obs::MetricsRegistry>();
        stale = reg->counter("gone");
        stale.inc();
    }
    stale.inc(100);  // must not crash or corrupt anything
    obs::MetricsRegistry fresh;
    fresh.counter("alive").inc(1);
    EXPECT_EQ(fresh.snapshot().counters.at("alive"), 1u);
}

TEST(Metrics, SnapshotDeltaSubtractsPerMetric)
{
    obs::MetricsRegistry reg;
    obs::Counter c = reg.counter("c");
    c.inc(10);
    const obs::MetricsSnapshot before = reg.snapshot();
    c.inc(5);
    reg.counter("late").inc(2);
    const obs::MetricsSnapshot delta =
        obs::snapshotDelta(before, reg.snapshot());
    EXPECT_EQ(delta.counters.at("c"), 5u);
    EXPECT_EQ(delta.counters.at("late"), 2u);
}

/** Sharded increments must be exact under concurrent hammering. */
TEST(Metrics, ExactUnderParallelRunner)
{
    obs::MetricsRegistry reg;
    obs::Counter c = reg.counter("hammer");
    constexpr size_t kJobs = 64;
    constexpr uint64_t kPerJob = 1000;
    const ParallelRunner runner(4);
    runner.forEach(kJobs, [&](size_t) {
        for (uint64_t i = 0; i < kPerJob; ++i)
            c.inc();
    });
    EXPECT_EQ(reg.snapshot().counters.at("hammer"), kJobs * kPerJob);
}

/**
 * The determinism contract end to end: the same experiment grid run
 * serially and with 4 workers must produce identical deterministic
 * counters (trace_cache.*, experiment.*, runner.*, core.*); only the
 * "runtime" metrics may differ.
 */
TEST(Metrics, DeterministicCountersAgreeSerialVsParallel)
{
    const auto run = [](unsigned threads) {
        obs::globalMetrics().reset();
        globalTraceCache().clear();
        const TableOptions opt{/*ops=*/20000, ExecMode::Parallel,
                               threads};
        (void)renderTable4(opt);
        return obs::globalMetrics().snapshot();
    };
    const obs::MetricsSnapshot serial = run(1);
    const obs::MetricsSnapshot parallel = run(4);
    EXPECT_EQ(serial.counters, parallel.counters);
    EXPECT_GT(serial.counters.at("sweep.batches"), 0u);
    EXPECT_GT(serial.counters.at("trace_cache.recordings"), 0u);
}

/** Pin the serialization format with a fully hand-built report. */
TEST(RunReport, GoldenJson)
{
    obs::MetricsRegistry reg;
    reg.counter("cache.hits").inc(3);
    reg.counter("sched.steals", obs::MetricKind::Runtime).inc(1);

    obs::RunReport report("golden");
    report.setConfig("workload", "perl");
    report.setConfig("ops", uint64_t{1000});
    report.setConfig("timing", false);
    report.addTable("t1", "a\tb\n");
    report.addWorkloadValue("perl", "miss_rate", 0.25, 4);
    report.addWorkloadValue("perl", "instructions", uint64_t{1000});
    report.capture(reg.snapshot());

    const std::string expected =
        "{\n"
        "  \"schema\": \"tpred-run-report/1\",\n"
        "  \"tool\": \"golden\",\n"
        "  \"config\": {\n"
        "    \"ops\": 1000,\n"
        "    \"timing\": false,\n"
        "    \"workload\": \"perl\"\n"
        "  },\n"
        "  \"metrics\": {\n"
        "    \"cache.hits\": 3\n"
        "  },\n"
        "  \"tables\": {\n"
        "    \"t1\": \"a\\tb\\n\"\n"
        "  },\n"
        "  \"workloads\": {\n"
        "    \"perl\": {\n"
        "      \"instructions\": 1000,\n"
        "      \"miss_rate\": 0.2500\n"
        "    }\n"
        "  },\n"
        "  \"runtime\": {\n"
        "    \"counters\": {\n"
        "      \"sched.steals\": 1\n"
        "    },\n"
        "    \"gauges\": {},\n"
        "    \"timers\": {},\n"
        "    \"info\": {},\n"
        "    \"resources\": {\"peak_rss_bytes\": 0}\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(report.toJson(), expected);
}

/**
 * A small Table 4 run serialized twice must be byte-identical once
 * the timing data is masked — here by simply not capturing the timers
 * (the snapshot's runtime half is dropped before capture), which is
 * the same masking rule tools/report_lint.py applies.
 */
TEST(RunReport, Table4RunIsByteStable)
{
    const auto render = [] {
        obs::globalMetrics().reset();
        globalTraceCache().clear();
        const TableOptions opt{/*ops=*/20000, ExecMode::Parallel,
                               /*threads=*/1};
        const std::string table = renderTable4(opt);

        obs::MetricsSnapshot snap = obs::globalMetrics().snapshot();
        snap.runtime.clear();  // timings zeroed: mask the
        snap.timers.clear();   // scheduling-dependent half
        snap.gauges.clear();

        obs::RunReport report("table4");
        report.setConfig("ops", uint64_t{20000});
        report.addTable("table4", table);
        report.capture(snap);
        return report.toJson();
    };
    const std::string first = render();
    const std::string second = render();
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"tpred-run-report/1\""), std::string::npos);
    EXPECT_NE(first.find("\"sweep.batches\""), std::string::npos);
}

/** The registry view is the only cache-effectiveness interface. */
TEST(RunReport, TraceCacheCountersLiveInRegistry)
{
    TraceCache cache;  // private registry: per-instance counts
    (void)cache.get("perl", 5000, 1);
    (void)cache.get("perl", 5000, 1);
    const obs::MetricsSnapshot snap =
        cache.metricsRegistry().snapshot();
    EXPECT_EQ(snap.counters.at("trace_cache.hits"), 1u);
    EXPECT_EQ(snap.counters.at("trace_cache.misses"), 1u);
    EXPECT_EQ(snap.counters.at("trace_cache.recordings"), 1u);
    EXPECT_EQ(cache.recordings(), 1u);
}

} // namespace
} // namespace tpred
