/** @file Unit tests for the MicroOp record and its classifiers. */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "trace/micro_op.hh"

namespace tpred
{
namespace
{

TEST(MicroOp, DefaultsAreNonBranch)
{
    MicroOp op;
    EXPECT_FALSE(op.isBranch());
    EXPECT_FALSE(op.isIndirect());
    EXPECT_EQ(op.dstReg, kNoReg);
    EXPECT_EQ(op.srcRegs[0], kNoReg);
}

TEST(MicroOp, BranchClassification)
{
    EXPECT_TRUE(test::branchOp(0x100, BranchKind::CondDirect, 0x200)
                    .isBranch());
    EXPECT_FALSE(test::branchOp(0x100, BranchKind::CondDirect, 0x200)
                     .isIndirect());
    EXPECT_TRUE(test::indirectOp(0x100, 0x200).isIndirect());
    EXPECT_TRUE(test::branchOp(0x100, BranchKind::Return, 0x200)
                    .isIndirect());
    EXPECT_TRUE(test::branchOp(0x100, BranchKind::IndirectCall, 0x200)
                    .isIndirect());
}

TEST(MicroOp, IsIndirectNonReturn)
{
    EXPECT_TRUE(isIndirectNonReturn(BranchKind::IndirectJump));
    EXPECT_TRUE(isIndirectNonReturn(BranchKind::IndirectCall));
    EXPECT_FALSE(isIndirectNonReturn(BranchKind::Return));
    EXPECT_FALSE(isIndirectNonReturn(BranchKind::CondDirect));
    EXPECT_FALSE(isIndirectNonReturn(BranchKind::None));
}

TEST(MicroOp, IsControl)
{
    EXPECT_FALSE(isControl(BranchKind::None));
    EXPECT_TRUE(isControl(BranchKind::CondDirect));
    EXPECT_TRUE(isControl(BranchKind::Return));
}

TEST(MicroOp, Names)
{
    EXPECT_EQ(branchKindName(BranchKind::IndirectJump), "indirect-jump");
    EXPECT_EQ(branchKindName(BranchKind::None), "none");
    EXPECT_EQ(instClassName(InstClass::Mul), "FP/INT Mul");
    EXPECT_EQ(instClassName(InstClass::Branch), "Branch");
}

TEST(MicroOp, NotTakenCondFallsThrough)
{
    MicroOp op = test::branchOp(0x100, BranchKind::CondDirect, 0x200,
                                /*taken=*/false);
    EXPECT_EQ(op.nextPc, 0x104u);
    EXPECT_FALSE(op.taken);
}

} // namespace
} // namespace tpred
