/** @file Tests for the multi-seed methodology helpers. */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/multi_seed.hh"
#include "harness/paper_tables.hh"

namespace tpred
{
namespace
{

TEST(MultiSeed, SummarizeBasics)
{
    auto r = summarize({0.1, 0.2, 0.3});
    EXPECT_NEAR(r.mean, 0.2, 1e-12);
    EXPECT_NEAR(r.stddev, 0.1, 1e-12);
    EXPECT_DOUBLE_EQ(r.min, 0.1);
    EXPECT_DOUBLE_EQ(r.max, 0.3);
}

TEST(MultiSeed, SummarizeSingleSample)
{
    auto r = summarize({0.5});
    EXPECT_DOUBLE_EQ(r.mean, 0.5);
    EXPECT_DOUBLE_EQ(r.stddev, 0.0);
}

TEST(MultiSeed, SummarizeEmpty)
{
    auto r = summarize({});
    EXPECT_DOUBLE_EQ(r.mean, 0.0);
    EXPECT_TRUE(r.samples.empty());
}

TEST(MultiSeed, RenderPercent)
{
    auto r = summarize({0.25, 0.35});
    std::string s = r.renderPercent();
    EXPECT_NE(s.find("30.0%"), std::string::npos);
    EXPECT_NE(s.find("±"), std::string::npos);
}

TEST(MultiSeed, SingleSeedSweepReportsZeroStddev)
{
    // Regression: sample stddev divides by n - 1; a 1-seed sweep must
    // report 0, not NaN.
    auto r = sweepSeeds("compress", 20000, 1,
                        indirectMissMetric(baselineConfig()));
    ASSERT_EQ(r.samples.size(), 1u);
    EXPECT_FALSE(std::isnan(r.stddev));
    EXPECT_DOUBLE_EQ(r.stddev, 0.0);
    EXPECT_DOUBLE_EQ(r.mean, r.samples[0]);
    EXPECT_DOUBLE_EQ(r.min, r.samples[0]);
    EXPECT_DOUBLE_EQ(r.max, r.samples[0]);
}

TEST(MultiSeed, SweepProducesOneSamplePerSeed)
{
    auto r = sweepSeeds("compress", 20000, 3,
                        indirectMissMetric(baselineConfig()));
    EXPECT_EQ(r.samples.size(), 3u);
    for (double s : r.samples) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
    }
}

TEST(MultiSeed, SeedsActuallyVaryTheMetric)
{
    auto r = sweepSeeds("perl", 60000, 3,
                        indirectMissMetric(baselineConfig()));
    // Different scripts per seed: some spread, but the same regime.
    EXPECT_GT(r.max, 0.5);
    EXPECT_GT(r.max - r.min, 0.0);
    EXPECT_LT(r.stddev, 0.2);
}

TEST(MultiSeed, PaperResultHoldsAcrossSeeds)
{
    // The headline claim is seed-robust: the target cache beats the
    // BTB on perl for every seed.
    auto btb = sweepSeeds("perl", 60000, 3,
                          indirectMissMetric(baselineConfig()));
    auto cache = sweepSeeds("perl", 60000, 3,
                            indirectMissMetric(taglessGshare()));
    for (size_t i = 0; i < btb.samples.size(); ++i)
        EXPECT_LT(cache.samples[i], btb.samples[i]) << "seed " << i + 1;
}

} // namespace
} // namespace tpred
