/** @file Unit tests for the oracle predictor. */

#include <gtest/gtest.h>

#include "core/oracle.hh"
#include "test_util.hh"

namespace tpred
{
namespace
{

TEST(Oracle, EchoesPrimedTarget)
{
    OraclePredictor oracle;
    oracle.prime(test::indirectOp(0x100, 0x4242));
    EXPECT_EQ(oracle.predict(0x100, 0).value(), 0x4242u);
}

TEST(Oracle, FollowsEachPrime)
{
    OraclePredictor oracle;
    for (uint64_t t = 0x1000; t < 0x1100; t += 8) {
        oracle.prime(test::indirectOp(0x100, t));
        EXPECT_EQ(oracle.predict(0x100, 0xdead).value(), t);
    }
}

TEST(Oracle, UpdateIsANoOp)
{
    OraclePredictor oracle;
    oracle.prime(test::indirectOp(0x100, 0x1111));
    oracle.update(0x100, 0, 0x9999);
    EXPECT_EQ(oracle.predict(0x100, 0).value(), 0x1111u);
}

TEST(Oracle, ZeroCost)
{
    OraclePredictor oracle;
    EXPECT_EQ(oracle.costBits(), 0u);
    EXPECT_EQ(oracle.describe(), "oracle");
}

} // namespace
} // namespace tpred
