/**
 * @file
 * End-to-end properties asserting the paper's qualitative results hold
 * in this reproduction — the "shape" checks of EXPERIMENTS.md.  These
 * run on shortened traces, so thresholds are deliberately loose.
 */

#include <gtest/gtest.h>

#include "harness/paper_tables.hh"

namespace tpred
{
namespace
{

constexpr size_t kOps = 250000;

const SharedTrace &
perlTrace()
{
    static const SharedTrace trace = recordWorkload("perl", kOps);
    return trace;
}

const SharedTrace &
gccTrace()
{
    static const SharedTrace trace = recordWorkload("gcc", kOps);
    return trace;
}

/** Paper §1: BTB schemes are ineffective for indirect jumps on the
 *  interpreter/compiler benchmarks. */
TEST(PaperProperties, BtbIndirectMispredictionIsHigh)
{
    EXPECT_GT(runAccuracy(perlTrace(), baselineConfig())
                  .indirectJumps.missRate(),
              0.60);
    EXPECT_GT(runAccuracy(gccTrace(), baselineConfig())
                  .indirectJumps.missRate(),
              0.55);
}

/** Paper abstract: the target cache sharply reduces the indirect
 *  misprediction rate for perl and gcc. */
TEST(PaperProperties, TargetCacheBeatsBtbOnPerlAndGcc)
{
    for (const SharedTrace *trace : {&perlTrace(), &gccTrace()}) {
        double btb = runAccuracy(*trace, baselineConfig())
                         .indirectJumps.missRate();
        double tagless = runAccuracy(*trace, taglessGshare())
                             .indirectJumps.missRate();
        EXPECT_LT(tagless, btb * 0.75) << trace->name();
    }
}

/** Paper Table 2: the 2-bit strategy helps some benchmarks; it never
 *  approaches the target cache. */
TEST(PaperProperties, TwoBitStrategyIsNotATargetCache)
{
    double two_bit = runAccuracy(perlTrace(), baselineConfig(),
                                 twoBitBtbFrontend())
                         .indirectJumps.missRate();
    double tagless = runAccuracy(perlTrace(), taglessGshare())
                         .indirectJumps.missRate();
    EXPECT_GT(two_bit, tagless);
}

/** Paper §4.2.1: gshare indexing beats GAg for the tagless cache
 *  (better table utilization). */
TEST(PaperProperties, GshareNoWorseThanGAgOnGcc)
{
    double gag = runAccuracy(gccTrace(), taglessGAg())
                     .indirectJumps.missRate();
    double gshare = runAccuracy(gccTrace(), taglessGshare())
                        .indirectJumps.missRate();
    EXPECT_LE(gshare, gag + 0.02);
}

/** Paper §4.2.3: global IndJmp path history excels on perl (the
 *  interpreter token-stream argument). */
TEST(PaperProperties, IndJmpPathHistoryStrongOnPerl)
{
    double pattern = runAccuracy(perlTrace(), taglessGshare())
                         .indirectJumps.missRate();
    double path = runAccuracy(
                      perlTrace(),
                      taglessGshare(pathGlobal(PathFilter::IndJmp)))
                      .indirectJumps.missRate();
    EXPECT_LT(path, pattern + 0.05);
    EXPECT_LT(path, 0.5);
}

/** Paper §4.3.1: with low associativity, Address indexing thrashes and
 *  History-XOR wins; the gap closes as associativity rises (Table 7). */
TEST(PaperProperties, AddressIndexingNeedsAssociativity)
{
    auto miss = [&](TaggedIndexScheme scheme, unsigned ways) {
        return runAccuracy(perlTrace(), taggedConfig(scheme, ways))
            .indirectJumps.missRate();
    };
    double addr1 = miss(TaggedIndexScheme::Address, 1);
    double xor1 = miss(TaggedIndexScheme::HistoryXor, 1);
    EXPECT_GT(addr1, xor1 + 0.10);

    double addr16 = miss(TaggedIndexScheme::Address, 16);
    EXPECT_LT(addr16, addr1 - 0.10);
}

/** Paper §4.3.3 (Table 9): with high associativity, longer history
 *  helps the tagged cache. */
TEST(PaperProperties, LongerHistoryHelpsHighAssociativity)
{
    auto miss = [&](unsigned history_bits, unsigned ways) {
        return runAccuracy(perlTrace(),
                           taggedConfig(TaggedIndexScheme::HistoryXor,
                                        ways,
                                        patternHistory(history_bits)))
            .indirectJumps.missRate();
    };
    EXPECT_LT(miss(16, 16), miss(9, 16) + 0.02);
}

/** Paper §4.4 / Figs 12-13: a tagged cache with >= 4 ways beats the
 *  direct-mapped tagged cache. */
TEST(PaperProperties, AssociativityHelpsTaggedCache)
{
    auto miss = [&](unsigned ways) {
        return runAccuracy(perlTrace(),
                           taggedConfig(TaggedIndexScheme::HistoryXor,
                                        ways))
            .indirectJumps.missRate();
    };
    EXPECT_LT(miss(4), miss(1) + 0.02);
}

/** Timing: the target cache reduces execution time on perl and gcc,
 *  and never beats the oracle. */
TEST(PaperProperties, ExecutionTimeReductionOrdering)
{
    for (const SharedTrace *trace : {&perlTrace(), &gccTrace()}) {
        uint64_t base = runTiming(*trace, baselineConfig()).cycles;
        uint64_t tagless = runTiming(*trace, taglessGshare()).cycles;
        uint64_t oracle = runTiming(*trace, oracleConfig()).cycles;
        EXPECT_LT(tagless, base) << trace->name();
        EXPECT_LE(oracle, tagless) << trace->name();
    }
}

/** The cascaded extension is at least competitive with the plain
 *  tagged cache of the same second-stage geometry. */
TEST(PaperProperties, CascadedCompetitiveWithTagged)
{
    double tagged = runAccuracy(perlTrace(),
                                taggedConfig(TaggedIndexScheme::HistoryXor,
                                             4))
                        .indirectJumps.missRate();
    double cascaded = runAccuracy(perlTrace(), cascadedConfig())
                          .indirectJumps.missRate();
    EXPECT_LT(cascaded, tagged + 0.10);
}

/** Returns stay out of the target cache and are near-perfectly
 *  predicted by the RAS (paper §1 footnote). */
TEST(PaperProperties, ReturnsHandledByRas)
{
    SharedTrace trace = recordWorkload("xlisp", kOps);
    FrontendStats stats = runAccuracy(trace, baselineConfig());
    ASSERT_GT(stats.returns.total(), 0u);
    EXPECT_GT(stats.returns.hitRate(), 0.99);
}

/** The C++ future-work workload: denser indirect calls, and the tagged
 *  cache helps (paper §5's closing conjecture). */
TEST(PaperProperties, CppVirtualBenefitsFromTaggedCache)
{
    SharedTrace trace = recordWorkload("cpp-virtual", kOps);
    double btb = runAccuracy(trace, baselineConfig())
                     .indirectJumps.missRate();
    double tagged = runAccuracy(trace,
                                taggedConfig(TaggedIndexScheme::HistoryXor,
                                             8, patternHistory(16)))
                        .indirectJumps.missRate();
    EXPECT_LT(tagged, btb);
}

} // namespace
} // namespace tpred
