/**
 * @file
 * Golden differential suite for the parallel experiment engine: every
 * paper-table driver is rendered through both the legacy serial path
 * and the ParallelRunner path at small op counts, and the outputs
 * must match byte for byte.  Runs under `ctest -L tsan` in a
 * TPRED_SANITIZE=thread build.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "harness/paper_tables.hh"

namespace tpred
{
namespace
{

/** Accuracy tables replay more ops than the (slower) timing tables. */
constexpr size_t kAccuracyOps = 20000;
constexpr size_t kTimingOps = 10000;

void
expectSerialParallelMatch(
    const std::function<std::string(const TableOptions &)> &render,
    size_t ops)
{
    const std::string serial =
        render({.ops = ops, .mode = ExecMode::Serial});
    const std::string parallel =
        render({.ops = ops, .mode = ExecMode::Parallel, .threads = 4});
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(PaperTablesDifferential, Table1BtbBaseline)
{
    expectSerialParallelMatch(renderTable1, kAccuracyOps);
}

TEST(PaperTablesDifferential, Table2TwoBitStrategy)
{
    expectSerialParallelMatch(renderTable2, kAccuracyOps);
}

TEST(PaperTablesDifferential, Table4TaglessPattern)
{
    expectSerialParallelMatch(renderTable4, kAccuracyOps);
}

TEST(PaperTablesDifferential, Table5PathAddrBits)
{
    expectSerialParallelMatch(renderTable5, kTimingOps);
}

TEST(PaperTablesDifferential, Table6PathBitsPerTarget)
{
    expectSerialParallelMatch(renderTable6, kTimingOps);
}

TEST(PaperTablesDifferential, Table7TaggedIndexing)
{
    expectSerialParallelMatch(renderTable7, kTimingOps);
}

TEST(PaperTablesDifferential, Table8TaggedPath)
{
    expectSerialParallelMatch(renderTable8, kTimingOps);
}

TEST(PaperTablesDifferential, Table9HistoryLength)
{
    expectSerialParallelMatch(renderTable9, kTimingOps);
}

TEST(PaperTablesDifferential, Fig1213TaglessVsTagged)
{
    expectSerialParallelMatch(renderFig1213, kTimingOps);
}

TEST(PaperTablesDifferential, ParallelRerunIsStable)
{
    // Two parallel renderings with different thread counts must also
    // agree with each other (scheduling independence).
    const std::string two = renderTable4(
        {.ops = kAccuracyOps, .mode = ExecMode::Parallel, .threads = 2});
    const std::string eight = renderTable4(
        {.ops = kAccuracyOps, .mode = ExecMode::Parallel, .threads = 8});
    EXPECT_EQ(two, eight);
}

} // namespace
} // namespace tpred
