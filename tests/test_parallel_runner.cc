/**
 * @file
 * Tests for the parallel experiment engine: thread pool, runner
 * determinism (bit-identical results at any thread count), and
 * record-exactly-once behaviour of the shared trace cache.  These run
 * under `ctest -L tsan` in a TPRED_SANITIZE=thread build.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/multi_seed.hh"
#include "harness/paper_tables.hh"
#include "harness/parallel_runner.hh"
#include "harness/thread_pool.hh"
#include "harness/trace_cache.hh"

namespace tpred
{
namespace
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, TasksCanSubmitTasks)
{
    // Nested submissions land on the submitting worker's own deque
    // and get stolen by idle siblings; wait() must cover them too.
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit([&pool, &count] {
            for (int j = 0; j < 8; ++j)
                pool.submit([&count] { count.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 16 * 8);
}

TEST(ThreadPool, ReusableAcrossWaitCycles)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 50);
    }
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ParallelRunner, MapKeysResultsByIndex)
{
    const ParallelRunner runner(8);
    const auto results = runner.map<size_t>(
        1000, [](size_t i) { return i * i; });
    ASSERT_EQ(results.size(), 1000u);
    for (size_t i = 0; i < results.size(); ++i)
        ASSERT_EQ(results[i], i * i);
}

TEST(ParallelRunner, SingleThreadRunsInline)
{
    const ParallelRunner runner(1);
    const auto caller = std::this_thread::get_id();
    runner.forEach(10, [&](size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ParallelRunner, PropagatesJobExceptions)
{
    const ParallelRunner runner(4);
    EXPECT_THROW(runner.forEach(100,
                                [](size_t i) {
                                    if (i == 37)
                                        throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
}

TEST(ParallelRunner, DefaultJobsOverride)
{
    setDefaultJobs(3);
    EXPECT_EQ(defaultJobs(), 3u);
    EXPECT_EQ(ParallelRunner().threads(), 3u);
    setDefaultJobs(0);
    EXPECT_GE(defaultJobs(), 1u);
}

// --- Determinism: the tentpole contract ----------------------------

TEST(ParallelSweep, SeedSweepBitIdenticalAcrossThreadCounts)
{
    constexpr size_t kOps = 30000;
    constexpr unsigned kSeeds = 6;
    const auto metric = indirectMissMetric(taglessGshare());

    // Legacy serial ground truth: a plain loop, no runner involved.
    std::vector<double> legacy;
    for (unsigned seed = 1; seed <= kSeeds; ++seed)
        legacy.push_back(metric(cachedTrace("perl", kOps, seed)));

    for (unsigned threads : {1u, 2u, 8u}) {
        const auto result =
            sweepSeeds("perl", kOps, kSeeds, metric, threads);
        ASSERT_EQ(result.samples.size(), legacy.size())
            << "threads=" << threads;
        for (size_t i = 0; i < legacy.size(); ++i) {
            EXPECT_EQ(std::memcmp(&result.samples[i], &legacy[i],
                                  sizeof(double)),
                      0)
                << "threads=" << threads << " sample " << i
                << " not bit-identical";
        }
    }
}

TEST(ParallelSweep, SummaryStatsIdenticalAcrossThreadCounts)
{
    constexpr size_t kOps = 20000;
    const auto metric = indirectMissMetric(baselineConfig());
    const auto serial = sweepSeeds("gcc", kOps, 4, metric, 1);
    const auto parallel = sweepSeeds("gcc", kOps, 4, metric, 8);
    EXPECT_EQ(std::memcmp(&serial.mean, &parallel.mean,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&serial.stddev, &parallel.stddev,
                          sizeof(double)),
              0);
    EXPECT_EQ(serial.renderPercent(), parallel.renderPercent());
}

// --- Trace cache ---------------------------------------------------

TEST(TraceCache, RecordsEachKeyExactlyOnceUnderConcurrentAccess)
{
    TraceCache cache;
    constexpr unsigned kThreads = 8;
    std::vector<const CompactTrace *> storage(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &storage, t] {
            const SharedTrace trace = cache.get("gcc", 20000, 7);
            storage[t] = &trace.compact();
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(cache.recordings(), 1u);
    EXPECT_EQ(cache.size(), 1u);
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(storage[t], storage[0])
            << "consumers must share one columnar trace";
}

TEST(TraceCache, DistinctKeysRecordSeparately)
{
    TraceCache cache;
    cache.get("compress", 10000, 1);
    cache.get("compress", 10000, 2);
    cache.get("compress", 10000, 1);  // hit
    EXPECT_EQ(cache.recordings(), 2u);
    cache.get("compress", 5000, 1);  // different length: new key
    EXPECT_EQ(cache.recordings(), 3u);
    EXPECT_EQ(cache.size(), 3u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    cache.get("compress", 10000, 1);  // re-recorded after clear
    EXPECT_EQ(cache.recordings(), 4u);
}

TEST(TraceCache, ConcurrentDistinctKeysAllRecorded)
{
    TraceCache cache;
    constexpr unsigned kThreads = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            cache.get("compress", 10000, t + 1);
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(cache.recordings(), kThreads);
    EXPECT_EQ(cache.size(), kThreads);
}

TEST(TraceCache, MatchesDirectRecording)
{
    TraceCache cache;
    const SharedTrace cached = cache.get("perl", 15000, 3);
    const SharedTrace direct = recordWorkload("perl", 15000, 3);
    ASSERT_EQ(cached.size(), direct.size());
    EXPECT_EQ(cached.name(), direct.name());
    const std::vector<MicroOp> cached_ops = cached.decodeOps();
    const std::vector<MicroOp> direct_ops = direct.decodeOps();
    for (size_t i = 0; i < cached.size(); ++i) {
        ASSERT_EQ(cached_ops[i].pc, direct_ops[i].pc);
        ASSERT_EQ(cached_ops[i].nextPc, direct_ops[i].nextPc);
    }
}

TEST(TraceCache, UnknownWorkloadThrowsAndIsNotPoisoned)
{
    TraceCache cache;
    EXPECT_THROW(cache.get("no-such-workload", 1000, 1),
                 std::invalid_argument);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_THROW(cache.get("no-such-workload", 1000, 1),
                 std::invalid_argument);
}

} // namespace
} // namespace tpred
