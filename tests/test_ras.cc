/** @file Unit tests for the return address stack. */

#include <gtest/gtest.h>

#include "bpred/ras.hh"

namespace tpred
{
namespace
{

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(0x104);
    ras.push(0x208);
    EXPECT_EQ(ras.pop(), 0x208u);
    EXPECT_EQ(ras.pop(), 0x104u);
}

TEST(Ras, UnderflowReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    ras.push(0x100);
    ras.pop();
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowOverwritesOldest)
{
    ReturnAddressStack ras(2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3);  // overwrites 0x1
    EXPECT_EQ(ras.size(), 2u);
    EXPECT_EQ(ras.pop(), 0x3u);
    EXPECT_EQ(ras.pop(), 0x2u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, TopDoesNotPop)
{
    ReturnAddressStack ras(4);
    ras.push(0x42);
    EXPECT_EQ(ras.top(), 0x42u);
    EXPECT_EQ(ras.size(), 1u);
}

TEST(Ras, Reset)
{
    ReturnAddressStack ras(4);
    ras.push(0x1);
    ras.reset();
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, DeepCallChainWithinDepth)
{
    ReturnAddressStack ras(16);
    for (uint64_t i = 1; i <= 16; ++i)
        ras.push(i * 4);
    for (uint64_t i = 16; i >= 1; --i)
        EXPECT_EQ(ras.pop(), i * 4);
}

TEST(Ras, WrapAroundAfterOverflowKeepsNewest)
{
    ReturnAddressStack ras(4);
    for (uint64_t i = 1; i <= 6; ++i)
        ras.push(i);
    // The newest 4 survive: 6,5,4,3.
    EXPECT_EQ(ras.pop(), 6u);
    EXPECT_EQ(ras.pop(), 5u);
    EXPECT_EQ(ras.pop(), 4u);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 0u);
}

} // namespace
} // namespace tpred
