/**
 * @file
 * Tests for strict run-length parsing: parseOps() must accept exactly
 * the positive decimal integers and nothing else, and resolveOps()
 * must fail loudly (exit 2) on a malformed argv[1] or TPRED_OPS
 * instead of silently falling back to the default budget.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "harness/experiment.hh"

namespace tpred
{
namespace
{

TEST(ParseOps, AcceptsPlainDecimals)
{
    EXPECT_EQ(parseOps("1", "t"), 1u);
    EXPECT_EQ(parseOps("42", "t"), 42u);
    EXPECT_EQ(parseOps("2000000", "t"), 2000000u);
    EXPECT_EQ(parseOps("007", "t"), 7u);  // leading zeros are digits
}

TEST(ParseOps, AcceptsSizeMax)
{
    const std::string max =
        std::to_string(std::numeric_limits<size_t>::max());
    EXPECT_EQ(parseOps(max, "t"), std::numeric_limits<size_t>::max());
}

TEST(ParseOps, RejectsSuffixJunk)
{
    EXPECT_THROW(parseOps("2m", "t"), std::invalid_argument);
    EXPECT_THROW(parseOps("1e6", "t"), std::invalid_argument);
    EXPECT_THROW(parseOps("20 ", "t"), std::invalid_argument);
    EXPECT_THROW(parseOps("20\n", "t"), std::invalid_argument);
    EXPECT_THROW(parseOps("1_000", "t"), std::invalid_argument);
}

TEST(ParseOps, RejectsSignsAndPrefixJunk)
{
    EXPECT_THROW(parseOps("-3", "t"), std::invalid_argument);
    EXPECT_THROW(parseOps("+3", "t"), std::invalid_argument);
    EXPECT_THROW(parseOps(" 20", "t"), std::invalid_argument);
    EXPECT_THROW(parseOps("0x20", "t"), std::invalid_argument);
}

TEST(ParseOps, RejectsEmptyAndZero)
{
    EXPECT_THROW(parseOps("", "t"), std::invalid_argument);
    EXPECT_THROW(parseOps("0", "t"), std::invalid_argument);
    EXPECT_THROW(parseOps("000", "t"), std::invalid_argument);
}

TEST(ParseOps, RejectsOverflow)
{
    // SIZE_MAX is 20 digits (64-bit); 21 nines must overflow.
    EXPECT_THROW(parseOps("184467440737095516160", "t"),
                 std::out_of_range);
    EXPECT_THROW(parseOps("999999999999999999999", "t"),
                 std::out_of_range);
}

TEST(ParseOps, ErrorMessageNamesTheSource)
{
    try {
        parseOps("2m", "argv[1]");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("argv[1]"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("2m"), std::string::npos);
    }
}

// --- resolveOps ----------------------------------------------------

size_t
callResolve(const char *arg, size_t fallback)
{
    std::string owned = arg ? arg : "";
    char prog[] = "prog";
    char *argv[] = {prog, arg ? owned.data() : nullptr, nullptr};
    return resolveOps(arg ? 2 : 1, argv, fallback);
}

TEST(ResolveOps, UsesValidArgvThenEnvThenFallback)
{
    unsetenv("TPRED_OPS");
    EXPECT_EQ(callResolve("12345", 50), 12345u);
    EXPECT_EQ(callResolve(nullptr, 50), 50u);
    setenv("TPRED_OPS", "777", 1);
    EXPECT_EQ(callResolve(nullptr, 50), 777u);
    EXPECT_EQ(callResolve("12345", 50), 12345u);  // argv wins
    unsetenv("TPRED_OPS");
}

using ResolveOpsDeath = ::testing::Test;

TEST(ResolveOpsDeath, MalformedArgvExits2)
{
    unsetenv("TPRED_OPS");
    EXPECT_EXIT(callResolve("2m", 50),
                ::testing::ExitedWithCode(2), "2m");
    EXPECT_EXIT(callResolve("-3", 50),
                ::testing::ExitedWithCode(2), "-3");
    EXPECT_EXIT(callResolve("", 50),
                ::testing::ExitedWithCode(2), "");
    EXPECT_EXIT(callResolve("999999999999999999999", 50),
                ::testing::ExitedWithCode(2), "");
}

TEST(ResolveOpsDeath, MalformedEnvExits2)
{
    setenv("TPRED_OPS", "2m", 1);
    EXPECT_EXIT(callResolve(nullptr, 50),
                ::testing::ExitedWithCode(2), "TPRED_OPS");
    setenv("TPRED_OPS", "-1", 1);
    EXPECT_EXIT(callResolve(nullptr, 50),
                ::testing::ExitedWithCode(2), "TPRED_OPS");
    unsetenv("TPRED_OPS");
}

TEST(ResolveOpsDeath, ValidArgvDoesNotConsultMalformedEnv)
{
    // argv[1] takes precedence; a broken TPRED_OPS must not kill a
    // run that never needed it.
    setenv("TPRED_OPS", "garbage", 1);
    EXPECT_EQ(callResolve("4242", 50), 4242u);
    unsetenv("TPRED_OPS");
}

} // namespace
} // namespace tpred
