/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace tpred
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    const uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(5);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++seen[rng.below(8)];
    for (int v : seen)
        EXPECT_GT(v, 300);  // roughly uniform
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / double(n), 0.3, 0.02);
}

TEST(Rng, UniformInHalfOpenInterval)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng rng(19);
    std::vector<double> w = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.weighted(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[2] / double(counts[0]), 3.0, 0.5);
}

TEST(Rng, WeightedAllZeroFallsBackToUniform)
{
    Rng rng(23);
    std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 4000; ++i)
        ++counts[rng.weighted(w)];
    for (int c : counts)
        EXPECT_GT(c, 700);
}

TEST(Rng, GeometricBounds)
{
    Rng rng(29);
    for (int i = 0; i < 5000; ++i) {
        unsigned v = rng.geometric(0.5, 4);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 4u);
    }
}

TEST(Rng, GeometricZeroPIsAlwaysOne)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(0.0, 8), 1u);
}

} // namespace
} // namespace tpred
