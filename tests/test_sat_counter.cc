/** @file Unit tests for the saturating counter. */

#include <gtest/gtest.h>

#include "common/sat_counter.hh"

namespace tpred
{
namespace
{

TEST(SatCounter, DefaultIsTwoBitAtZero)
{
    SatCounter ctr;
    EXPECT_EQ(ctr.count(), 0u);
    EXPECT_EQ(ctr.max(), 3u);
    EXPECT_TRUE(ctr.isMin());
    EXPECT_FALSE(ctr.isTaken());
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter ctr(2, 0);
    for (int i = 0; i < 10; ++i)
        ctr.increment();
    EXPECT_EQ(ctr.count(), 3u);
    EXPECT_TRUE(ctr.isMax());
    EXPECT_TRUE(ctr.isTaken());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter ctr(2, 3);
    for (int i = 0; i < 10; ++i)
        ctr.decrement();
    EXPECT_EQ(ctr.count(), 0u);
    EXPECT_TRUE(ctr.isMin());
}

TEST(SatCounter, TakenThreshold)
{
    SatCounter ctr(2, 0);
    EXPECT_FALSE(ctr.isTaken());  // 0
    ctr.increment();
    EXPECT_FALSE(ctr.isTaken());  // 1: weakly not-taken
    ctr.increment();
    EXPECT_TRUE(ctr.isTaken());   // 2: weakly taken
    ctr.increment();
    EXPECT_TRUE(ctr.isTaken());   // 3
}

TEST(SatCounter, InitialClamped)
{
    SatCounter ctr(2, 100);
    EXPECT_EQ(ctr.count(), 3u);
}

TEST(SatCounter, SetClamped)
{
    SatCounter ctr(3);
    ctr.set(200);
    EXPECT_EQ(ctr.count(), 7u);
    ctr.set(2);
    EXPECT_EQ(ctr.count(), 2u);
}

TEST(SatCounter, OneBitCounter)
{
    SatCounter ctr(1);
    EXPECT_EQ(ctr.max(), 1u);
    ctr.increment();
    EXPECT_TRUE(ctr.isTaken());
    ctr.increment();
    EXPECT_EQ(ctr.count(), 1u);
}

/** Hysteresis property: takes two updates to flip a saturated 2-bit
 *  counter's direction — the behaviour branch predictors rely on. */
TEST(SatCounter, TwoBitHysteresis)
{
    SatCounter ctr(2, 3);
    ctr.decrement();
    EXPECT_TRUE(ctr.isTaken());   // one bad outcome does not flip
    ctr.decrement();
    EXPECT_FALSE(ctr.isTaken());  // two do
}

} // namespace
} // namespace tpred
