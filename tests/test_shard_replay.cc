/**
 * @file
 * Sharded-vs-continuous differential: for every workload, replaying a
 * segmented container in shards (with checkpoint restore + warm-up)
 * must be bit-identical to continuous serial replay — FrontendStats,
 * timing results and the deterministic observability counters all
 * agree, and every shard's boundary proofs hold.  Shard counts
 * include 7 over 7 segments (uneven region/segment alignment) and 1
 * (degenerate).  Also covers the streaming primitives the sharding
 * rides on: SegmentedReplay vs resident decode, extractBranchStream
 * vs BranchStream::extract, and the fused sweep on segments.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "corpus/corpus.hh"
#include "corpus/segmented_trace.hh"
#include "harness/paper_tables.hh"
#include "harness/shard_replay.hh"
#include "harness/sweep_kernel.hh"
#include "obs/metrics.hh"
#include "workloads/workload.hh"

namespace fs = std::filesystem;

namespace tpred
{
namespace
{

constexpr size_t kOps = 40000;
constexpr size_t kSegmentOps = 6000;  // 7 segments over 40k ops

/** Fresh empty directory under the system temp dir. */
std::string
makeTempDir(const std::string &tag)
{
    static int counter = 0;
    const fs::path dir = fs::temp_directory_path() /
                         ("tpred_shard_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter++));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

struct TempDir
{
    explicit TempDir(const std::string &tag) : path(makeTempDir(tag)) {}
    ~TempDir() { fs::remove_all(path); }
    std::string path;
};

/** Builds a segmented container for @p workload in @p dir. */
std::shared_ptr<const SegmentedTrace>
makeSegmented(const std::string &dir, const std::string &workload,
              uint64_t seed, size_t ops = kOps,
              size_t segment_ops = kSegmentOps)
{
    CorpusManager corpus(dir);
    const CorpusKey key{workload, seed, ops};
    auto source = makeWorkload(workload, seed);
    corpus.storeSegmentedFromSource(key, *source, source->name(),
                                    segment_ops);
    auto trace = corpus.loadSegmented(key, segment_ops);
    EXPECT_NE(trace, nullptr);
    return trace;
}

bool
sameStats(const FrontendStats &a, const FrontendStats &b)
{
    auto ratio_eq = [](const RatioStat &x, const RatioStat &y) {
        return x.hits() == y.hits() && x.total() == y.total();
    };
    return a.instructions == b.instructions &&
           ratio_eq(a.allBranches, b.allBranches) &&
           ratio_eq(a.condDirection, b.condDirection) &&
           ratio_eq(a.condBranches, b.condBranches) &&
           ratio_eq(a.uncondDirect, b.uncondDirect) &&
           ratio_eq(a.indirectJumps, b.indirectJumps) &&
           ratio_eq(a.returns, b.returns) &&
           ratio_eq(a.btbHits, b.btbHits);
}

bool
sameResult(const CoreResult &a, const CoreResult &b)
{
    return a.cycles == b.cycles && a.instructions == b.instructions &&
           a.stallCyclesByKind == b.stallCyclesByKind &&
           sameStats(a.frontend, b.frontend);
}

class ShardWorkloads
    : public ::testing::TestWithParam<const char *>
{
};

/**
 * The tentpole differential: for 2 seeds x shard counts {1, 2, 4, 7},
 * sharded accuracy replay equals streaming replay equals resident
 * runAccuracy(), every checkpoint proof holds, and the deterministic
 * counter deltas of streaming and sharded runs are identical (a
 * sharded replay is counter-indistinguishable from a continuous one).
 */
TEST_P(ShardWorkloads, AccuracyShardedIsBitIdentical)
{
    const std::string workload = GetParam();
    const TempDir dir("acc_" + workload);
    const IndirectConfig config =
        taggedConfig(TaggedIndexScheme::HistoryXor, 4,
                     patternHistory(9));

    for (const uint64_t seed : {1u, 2u}) {
        const auto seg = makeSegmented(dir.path, workload, seed);
        ASSERT_EQ(seg->segmentCount(), 7u);
        const SharedTrace resident =
            recordWorkload(workload, kOps, seed);
        const FrontendStats expected = runAccuracy(resident, config);

        const auto before = obs::globalMetrics().snapshot();
        const FrontendStats streaming =
            runAccuracyStreaming(seg, config);
        const auto mid = obs::globalMetrics().snapshot();
        EXPECT_TRUE(sameStats(streaming, expected))
            << workload << " seed " << seed;

        for (const unsigned shards : {1u, 2u, 4u, 7u}) {
            const auto pre = obs::globalMetrics().snapshot();
            const ShardedAccuracyResult sharded = runAccuracySharded(
                seg, config, {.shards = shards});
            const auto post = obs::globalMetrics().snapshot();

            EXPECT_TRUE(sharded.verified())
                << workload << " seed " << seed << " shards "
                << shards;
            ASSERT_EQ(sharded.shards.size(), shards);
            for (const ShardProof &p : sharded.shards) {
                EXPECT_TRUE(p.entryMatched) << p.beginOp;
                EXPECT_TRUE(p.exitMatched) << p.endOp;
                EXPECT_TRUE(p.error.empty()) << p.error;
            }
            EXPECT_TRUE(sameStats(sharded.stats, expected));
            EXPECT_TRUE(sameStats(sharded.serial, expected));
            EXPECT_GT(sharded.checkpointBytes, 0u);

            // Deterministic counters must not see the difference
            // between one continuous replay and a sharded one.
            EXPECT_EQ(
                obs::snapshotDelta(before, mid).counters,
                obs::snapshotDelta(pre, post).counters)
                << workload << " shards " << shards;
        }
    }
}

/** Timing analogue on a workload subset (the core model is ~20x the
 *  cost of the accuracy path; full coverage rides the accuracy test). */
TEST(ShardReplay, TimingShardedIsBitIdentical)
{
    const IndirectConfig config =
        taggedConfig(TaggedIndexScheme::HistoryXor, 4,
                     patternHistory(9));
    for (const std::string workload : {"gcc", "perl"}) {
        const TempDir dir("timing_" + workload);
        const auto seg = makeSegmented(dir.path, workload, 1);
        const SharedTrace resident = recordWorkload(workload, kOps, 1);
        const CoreResult expected = runTiming(resident, config);

        const CoreResult streaming = runTimingStreaming(seg, config);
        EXPECT_TRUE(sameResult(streaming, expected)) << workload;

        for (const unsigned shards : {2u, 7u}) {
            const ShardedTimingResult sharded =
                runTimingSharded(seg, config, {.shards = shards});
            EXPECT_TRUE(sharded.verified())
                << workload << " shards " << shards;
            EXPECT_TRUE(sameResult(sharded.result, expected))
                << workload << " shards " << shards;
            EXPECT_TRUE(sameResult(sharded.serial, expected));
        }
    }
}

/** Shard counts that exceed the segment count or the op count still
 *  verify (degenerate regions collapse to zero-length warm-ups). */
TEST(ShardReplay, MoreShardsThanSegmentsStillVerifies)
{
    const TempDir dir("tiny");
    const auto seg = makeSegmented(dir.path, "compress", 3, 2000, 700);
    ASSERT_EQ(seg->segmentCount(), 3u);
    const ShardedAccuracyResult sharded = runAccuracySharded(
        seg, taglessGshare(), {.shards = 11});
    EXPECT_TRUE(sharded.verified());
    EXPECT_TRUE(sameStats(sharded.stats, sharded.serial));
}

/** SegmentedReplay must yield exactly the resident op sequence, and
 *  mid-trace start positions must land on the right op. */
TEST(ShardReplay, SegmentedReplayMatchesResidentDecode)
{
    const TempDir dir("replay");
    const auto seg = makeSegmented(dir.path, "go", 5);
    const SharedTrace resident = recordWorkload("go", kOps, 5);
    const std::vector<MicroOp> ops = resident.compact().decodeAll();
    ASSERT_EQ(ops.size(), seg->totalOps());

    size_t windows = 0;
    SegmentedReplay replay(seg, 0, [&] { ++windows; });
    MicroOp op;
    for (size_t i = 0; i < ops.size(); ++i) {
        ASSERT_TRUE(replay.next(op)) << "op " << i;
        EXPECT_EQ(op.pc, ops[i].pc) << "op " << i;
        EXPECT_EQ(op.nextPc, ops[i].nextPc) << "op " << i;
        EXPECT_EQ(op.cls, ops[i].cls) << "op " << i;
        EXPECT_EQ(op.branch, ops[i].branch) << "op " << i;
    }
    EXPECT_FALSE(replay.next(op));
    EXPECT_EQ(windows, seg->segmentCount());

    // Start mid-segment and mid-trace: first op must be ops[start].
    for (const uint64_t start : {1u, 5999u, 6000u, 23456u, 39999u}) {
        SegmentedReplay from(seg, start);
        ASSERT_TRUE(from.next(op)) << "start " << start;
        EXPECT_EQ(op.pc, ops[start].pc) << "start " << start;
        EXPECT_EQ(op.nextPc, ops[start].nextPc);
    }
    SegmentedReplay at_end(seg, seg->totalOps());
    EXPECT_FALSE(at_end.next(op));
}

/** extractBranchStream must equal the resident extraction, and the
 *  fused sweep kernel must produce identical stats over it. */
TEST(ShardReplay, BranchStreamAndSweepMatchResident)
{
    const TempDir dir("sweep");
    const auto seg = makeSegmented(dir.path, "vortex", 2);
    const SharedTrace resident = recordWorkload("vortex", kOps, 2);

    const BranchStream from_seg = extractBranchStream(*seg);
    const BranchStream from_res =
        BranchStream::extract(resident.compact());
    ASSERT_EQ(from_seg.size(), from_res.size());
    EXPECT_EQ(from_seg.opCount, from_res.opCount);
    EXPECT_TRUE(from_seg == from_res);

    const std::vector<IndirectConfig> configs = {
        taglessGshare(),
        taggedConfig(TaggedIndexScheme::HistoryXor, 4,
                     patternHistory(9)),
        cascadedConfig(),
    };
    const auto swept = runSweep(from_seg, configs);
    ASSERT_EQ(swept.size(), configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        EXPECT_TRUE(sameStats(swept[i],
                              runAccuracy(resident, configs[i])))
            << "config " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ShardWorkloads,
    ::testing::Values("compress", "gcc", "go", "ijpeg", "m88ksim",
                      "perl", "vortex", "xlisp"),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace tpred
