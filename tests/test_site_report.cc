/** @file Tests for the per-site misprediction analysis. */

#include <algorithm>

#include <gtest/gtest.h>

#include "harness/paper_tables.hh"
#include "harness/site_report.hh"

namespace tpred
{
namespace
{

TEST(SiteReport, AccountsForEveryIndirectJump)
{
    SharedTrace trace = recordWorkload("perl", 50000);
    SiteReport report = analyzeSites(trace, baselineConfig());

    uint64_t execs = 0, misses = 0;
    for (const auto &site : report.sites) {
        execs += site.executions;
        misses += site.mispredictions;
        EXPECT_LE(site.mispredictions, site.executions);
        EXPECT_GE(site.distinctTargets, 1u);
    }
    EXPECT_EQ(execs, report.totalIndirect);
    EXPECT_EQ(misses, report.totalMisses);
    EXPECT_GT(report.totalIndirect, 0u);
}

TEST(SiteReport, MatchesAggregateAccuracy)
{
    SharedTrace trace = recordWorkload("xlisp", 50000);
    SiteReport report = analyzeSites(trace, taglessGshare());
    FrontendStats stats = runAccuracy(trace, taglessGshare());
    EXPECT_EQ(report.totalIndirect, stats.indirectJumps.total());
    EXPECT_EQ(report.totalMisses, stats.indirectJumps.misses());
}

TEST(SiteReport, SortedByMisses)
{
    SharedTrace trace = recordWorkload("gcc", 50000);
    SiteReport report = analyzeSites(trace, baselineConfig());
    for (size_t i = 1; i < report.sites.size(); ++i)
        EXPECT_GE(report.sites[i - 1].mispredictions,
                  report.sites[i].mispredictions);
}

TEST(SiteReport, RenderShowsTopSites)
{
    SharedTrace trace = recordWorkload("perl", 50000);
    SiteReport report = analyzeSites(trace, baselineConfig());
    std::string out = report.render(2);
    EXPECT_NE(out.find("0x"), std::string::npos);
    EXPECT_NE(out.find("miss rate"), std::string::npos);
    // Header + rule + 2 rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(SiteReport, BetterPredictorFewerMisses)
{
    SharedTrace trace = recordWorkload("m88ksim", 50000);
    SiteReport btb = analyzeSites(trace, baselineConfig());
    SiteReport cache = analyzeSites(trace, taglessGshare());
    EXPECT_LT(cache.totalMisses, btb.totalMisses);
    EXPECT_EQ(cache.totalIndirect, btb.totalIndirect);
}

} // namespace
} // namespace tpred
