/** @file Tests for the timing model's stall-cycle attribution. */

#include <gtest/gtest.h>

#include "harness/paper_tables.hh"
#include "test_util.hh"
#include "uarch/core_model.hh"

namespace tpred
{
namespace
{

CoreResult
run(std::vector<MicroOp> ops)
{
    VectorTraceSource trace(std::move(ops));
    FrontendPredictor frontend{FrontendConfig{}};
    CoreModel core(CoreParams{});
    return core.run(trace, frontend, 1u << 30);
}

TEST(StallAttribution, NoBranchesNoStalls)
{
    std::vector<MicroOp> ops(2000, test::plainOp(0x100));
    CoreResult result = run(ops);
    for (uint64_t s : result.stallCyclesByKind)
        EXPECT_EQ(s, 0u);
}

TEST(StallAttribution, AlternatingIndirectChargesIndirectKind)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 2000; ++i) {
        ops.push_back(test::plainOp(0x100));
        ops.push_back(
            test::indirectOp(0x200, (i & 1) ? 0x4000 : 0x5000));
    }
    CoreResult result = run(ops);
    EXPECT_GT(result.indirectStallCycles(), 1000u);
    EXPECT_EQ(result.stallCyclesByKind[static_cast<size_t>(
                  BranchKind::CondDirect)],
              0u);
    EXPECT_LT(result.indirectStallCycles(), result.cycles);
}

TEST(StallAttribution, RandomConditionalsChargeCondKind)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 3000; ++i) {
        ops.push_back(test::plainOp(0x100));
        // A pseudo-random but BTB-resident conditional branch.
        const bool taken = ((i * 2654435761u) >> 16) & 1;
        ops.push_back(test::branchOp(0x200, BranchKind::CondDirect,
                                     0x4000, taken));
        if (taken)
            ops.push_back(test::plainOp(0x4000));
    }
    CoreResult result = run(ops);
    EXPECT_GT(result.stallCyclesByKind[static_cast<size_t>(
                  BranchKind::CondDirect)],
              100u);
    EXPECT_EQ(result.indirectStallCycles(), 0u);
}

TEST(StallAttribution, TargetCacheRemovesIndirectStalls)
{
    SharedTrace trace = recordWorkload("perl", 150000);
    CoreResult base = runTiming(trace, baselineConfig());
    CoreResult oracle = runTiming(trace, oracleConfig());
    // The oracle removes essentially all indirect stalls...
    EXPECT_LT(oracle.indirectStallCycles(),
              base.indirectStallCycles() / 5);
    // ...and the cycles saved are commensurate with (but smaller
    // than) the stalls removed — fetch stalls overlap with window
    // and memory bottlenecks, so removing a stall cycle saves less
    // than a full cycle.
    const uint64_t saved = base.cycles - oracle.cycles;
    const uint64_t stalls_removed =
        base.indirectStallCycles() - oracle.indirectStallCycles();
    EXPECT_GT(saved, stalls_removed / 8);
    EXPECT_LT(saved, stalls_removed * 2);
}

TEST(StallAttribution, StallsAreBoundedByCycles)
{
    SharedTrace trace = recordWorkload("gcc", 100000);
    CoreResult result = runTiming(trace, baselineConfig());
    uint64_t total = 0;
    for (uint64_t s : result.stallCyclesByKind)
        total += s;
    EXPECT_LE(total, result.cycles);
    EXPECT_GT(total, 0u);
}

} // namespace
} // namespace tpred
