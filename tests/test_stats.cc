/** @file Unit tests for statistics helpers. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace tpred
{
namespace
{

TEST(RatioStat, Empty)
{
    RatioStat stat;
    EXPECT_EQ(stat.total(), 0u);
    EXPECT_DOUBLE_EQ(stat.hitRate(), 0.0);
    EXPECT_DOUBLE_EQ(stat.missRate(), 0.0);
}

TEST(RatioStat, CountsHitsAndMisses)
{
    RatioStat stat;
    stat.record(true);
    stat.record(true);
    stat.record(false);
    EXPECT_EQ(stat.hits(), 2u);
    EXPECT_EQ(stat.misses(), 1u);
    EXPECT_NEAR(stat.hitRate(), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(stat.missRate(), 1.0 / 3.0, 1e-12);
}

TEST(RatioStat, Merge)
{
    RatioStat a, b;
    a.record(true);
    b.record(false);
    b.record(false);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.misses(), 2u);
}

TEST(RatioStat, Reset)
{
    RatioStat stat;
    stat.record(true);
    stat.reset();
    EXPECT_EQ(stat.total(), 0u);
}

TEST(Stats, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.5), "50.00%");
    EXPECT_EQ(formatPercent(0.123456, 1), "12.3%");
    EXPECT_EQ(formatPercent(-0.05, 0), "-5%");
}

TEST(Stats, FormatCount)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(1234567), "1,234,567");
}

TEST(Stats, ExecTimeReduction)
{
    EXPECT_DOUBLE_EQ(execTimeReduction(100, 90), 0.10);
    EXPECT_DOUBLE_EQ(execTimeReduction(100, 110), -0.10);
    EXPECT_DOUBLE_EQ(execTimeReduction(100, 100), 0.0);
    EXPECT_DOUBLE_EQ(execTimeReduction(0, 50), 0.0);
}

} // namespace
} // namespace tpred
