/**
 * @file
 * Branch-stream pipeline tests: the TPBS container codec
 * (round-trips, determinism, edge-case traces), the stream-tier
 * corruption suite (bit flip, truncation, version skew -> quarantine
 * + bit-identical re-extraction), the TraceCache stream tier and its
 * counters, segment-prefetch and SIMD differentials, the
 * hardware-vs-software CRC32C proof, and corpus ls/gc behaviour for
 * derived stream containers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/crc32c.hh"
#include "common/simd.hh"
#include "corpus/corpus.hh"
#include "corpus/segmented_trace.hh"
#include "harness/paper_tables.hh"
#include "harness/shard_replay.hh"
#include "harness/sweep_kernel.hh"
#include "harness/trace_cache.hh"
#include "obs/metrics.hh"
#include "test_util.hh"
#include "trace/branch_stream.hh"
#include "trace/compact_io.hh"
#include "trace/stream_io.hh"
#include "workloads/workload.hh"

namespace fs = std::filesystem;

namespace tpred
{
namespace
{

/** Fresh empty directory under the system temp dir. */
std::string
makeTempDir(const std::string &tag)
{
    static int counter = 0;
    const fs::path dir = fs::temp_directory_path() /
                         ("tpred_stream_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter++));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

struct TempDir
{
    explicit TempDir(const std::string &tag) : path(makeTempDir(tag)) {}
    ~TempDir() { fs::remove_all(path); }
    std::string path;
};

/** Registry counter value; every counter is registered at 0. */
uint64_t
counterOf(const obs::MetricsRegistry &reg, const std::string &name)
{
    return reg.snapshot().counters.at(name);
}

bool
sameStats(const FrontendStats &a, const FrontendStats &b)
{
    auto ratio_eq = [](const RatioStat &x, const RatioStat &y) {
        return x.hits() == y.hits() && x.total() == y.total();
    };
    return a.instructions == b.instructions &&
           ratio_eq(a.allBranches, b.allBranches) &&
           ratio_eq(a.condDirection, b.condDirection) &&
           ratio_eq(a.indirectJumps, b.indirectJumps) &&
           ratio_eq(a.returns, b.returns) &&
           ratio_eq(a.btbHits, b.btbHits);
}

std::vector<IndirectConfig>
sweepBatch()
{
    return {
        taglessGshare(),
        taggedConfig(TaggedIndexScheme::HistoryXor, 4,
                     patternHistory(9)),
        cascadedConfig(),
    };
}

CompactTrace
sampleTrace(size_t ops = 5000)
{
    auto workload = makeWorkload("perl", 7);
    return CompactTrace::encode(drainTrace(*workload, ops));
}

/** Serializes then reopens @p stream, verifying the name round-trip. */
BranchStream
roundTrip(const BranchStream &stream, const std::string &name)
{
    auto image = std::make_shared<std::vector<uint8_t>>(
        serializeBranchStream(stream, name));
    std::string got_name;
    const BranchStream back = openBranchStreamContainer(
        *image, image, got_name, "image");
    EXPECT_EQ(got_name, name);
    return back;
}

/** Restores a process-wide toggle on scope exit. */
struct PrefetchGuard
{
    bool saved = segmentPrefetchEnabled();
    ~PrefetchGuard() { setSegmentPrefetchEnabled(saved); }
};

struct ScalarGuard
{
    ~ScalarGuard() { simd::setForceScalar(false); }
};

// ---------------------------------------------------------------
// TPBS container codec
// ---------------------------------------------------------------

TEST(StreamContainer, RoundTripIsLossless)
{
    const CompactTrace trace = sampleTrace();
    const BranchStream stream = BranchStream::extract(trace);
    ASSERT_GT(stream.size(), 0u);

    const BranchStream back = roundTrip(stream, "perl");
    EXPECT_TRUE(stream == back);
    EXPECT_EQ(back.opCount, trace.size());

    // The reopened (zero-copy) stream drives the fused sweep to the
    // exact statistics of the freshly extracted one.
    const std::vector<FrontendStats> want = runSweep(stream,
                                                     sweepBatch());
    const std::vector<FrontendStats> got = runSweep(back, sweepBatch());
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i)
        EXPECT_TRUE(sameStats(want[i], got[i]));
}

TEST(StreamContainer, SerializationIsDeterministic)
{
    const BranchStream stream =
        BranchStream::extract(sampleTrace(3000));
    EXPECT_EQ(serializeBranchStream(stream, "perl"),
              serializeBranchStream(stream, "perl"));
}

TEST(StreamContainer, PeekReportsHeaderSummary)
{
    const CompactTrace trace = sampleTrace(4000);
    const BranchStream stream = BranchStream::extract(trace);
    const std::vector<uint8_t> image =
        serializeBranchStream(stream, "perl");

    const StreamContainerInfo info =
        peekBranchStreamContainer(image, "image");
    EXPECT_EQ(info.name, "perl");
    EXPECT_EQ(info.opCount, trace.size());
    EXPECT_EQ(info.branchCount, stream.size());
    EXPECT_EQ(info.version, kStreamVersion);
    EXPECT_EQ(info.fileBytes, image.size());
}

TEST(StreamContainer, EmptyTraceRoundTrips)
{
    const CompactTrace trace = CompactTrace::encode({});
    const BranchStream stream = BranchStream::extract(trace);
    EXPECT_EQ(stream.size(), 0u);
    EXPECT_EQ(stream.opCount, 0u);

    const BranchStream back = roundTrip(stream, "empty");
    EXPECT_TRUE(stream == back);
}

TEST(StreamContainer, BranchlessTraceRoundTrips)
{
    // All plain ops: a valid trace whose stream has zero branches but
    // a nonzero op count (every op still counts one instruction).
    std::vector<MicroOp> ops;
    for (uint64_t i = 0; i < 64; ++i)
        ops.push_back(test::plainOp(0x1000 + i * 4));
    const CompactTrace trace = CompactTrace::encode(ops);

    const BranchStream stream = BranchStream::extract(trace);
    EXPECT_EQ(stream.size(), 0u);
    EXPECT_EQ(stream.opCount, 64u);

    const BranchStream back = roundTrip(stream, "branchless");
    EXPECT_TRUE(stream == back);
    EXPECT_EQ(back.opCount, 64u);
}

/** Ops that defeat the encode-time fast scan (see test_sweep.cc). */
std::vector<MicroOp>
hostileOps(size_t count)
{
    std::vector<MicroOp> ops;
    ops.reserve(count);
    uint64_t pc = 0x1000;
    size_t phase = 0;
    while (ops.size() < count) {
        MicroOp op;
        op.pc = pc;
        op.fallthrough = pc + 4;
        switch (phase++ % 5) {
          case 0:  // plain op
            op.nextPc = op.fallthrough;
            break;
          case 1:  // redirect on a non-branch (kills the fast scan)
            op.nextPc = pc + 0x40;
            break;
          case 2: {  // indirect jump with memAddr on a branch
            op.cls = InstClass::Branch;
            op.branch = BranchKind::IndirectJump;
            op.taken = true;
            op.memAddr = 0xbeef;
            op.selector = phase % 5;
            op.nextPc = 0x8000 + (phase % 3) * 0x100 + (pc & 0xff0);
            break;
          }
          case 3: {  // conditional, alternating direction
            op.cls = InstClass::Branch;
            op.branch = BranchKind::CondDirect;
            op.taken = (phase % 3) != 0;
            op.nextPc = op.taken ? pc + 0x80 : op.fallthrough;
            break;
          }
          default:  // discontinuity: pc does not chain
            op.nextPc = op.fallthrough;
            pc += 0x1000;
            break;
        }
        pc = op.nextPc != 0 ? op.nextPc : pc + 4;
        ops.push_back(op);
    }
    return ops;
}

TEST(StreamContainer, HostileTraceExtractsAndRoundTrips)
{
    // Extraction must take the block-decode fallback and still match
    // what forEachBranch reports; the container must round-trip it.
    const std::vector<MicroOp> ops = hostileOps(4000);
    const CompactTrace trace = CompactTrace::encode(ops);
    const BranchStream stream = BranchStream::extract(trace);

    size_t branches = 0;
    for (const MicroOp &op : ops)
        if (op.cls == InstClass::Branch)
            ++branches;
    ASSERT_EQ(stream.size(), branches);
    EXPECT_EQ(stream.opCount, ops.size());

    const BranchStream back = roundTrip(stream, "hostile");
    EXPECT_TRUE(stream == back);
}

TEST(StreamContainer, GarbageBytesAreRejected)
{
    const std::vector<uint8_t> junk(256, 0xA5);
    std::string name;
    EXPECT_THROW(openBranchStreamContainer(junk, nullptr, name, "junk"),
                 CompactFormatError);
    EXPECT_THROW(peekBranchStreamContainer(junk, "junk"),
                 CompactFormatError);
}

// ---------------------------------------------------------------
// TraceCache stream tier
// ---------------------------------------------------------------

TEST(StreamTier, CacheMemoizesAndPersistsStreams)
{
    const TempDir dir("tier");
    const std::string workload = "xlisp";
    const size_t ops = 20000;

    std::shared_ptr<const BranchStream> first;
    {
        TraceCache cache;
        cache.attachCorpus(std::make_shared<CorpusManager>(dir.path));
        first = cache.getStream(workload, ops);
        ASSERT_NE(first, nullptr);
        EXPECT_EQ(counterOf(cache.metricsRegistry(),
                            "trace_cache.stream_misses"), 1u);
        EXPECT_EQ(counterOf(cache.metricsRegistry(),
                            "trace_cache.stream_extractions"), 1u);
        EXPECT_EQ(counterOf(cache.corpus()->metricsRegistry(),
                            "stream_corpus.stores"), 1u);

        // Memo hit on re-request: same shared stream, no new work.
        EXPECT_EQ(cache.getStream(workload, ops), first);
        EXPECT_EQ(counterOf(cache.metricsRegistry(),
                            "trace_cache.stream_hits"), 1u);
    }
    ASSERT_TRUE(fs::exists(
        fs::path(dir.path) /
        CorpusManager::streamFileName({workload, 1, ops})));

    // Second process (simulated): the stream tier serves from disk —
    // zero-copy, no trace decode, no extraction pass.
    TraceCache cache;
    cache.attachCorpus(std::make_shared<CorpusManager>(dir.path));
    const auto warm = cache.getStream(workload, ops);
    ASSERT_NE(warm, nullptr);
    EXPECT_EQ(counterOf(cache.metricsRegistry(),
                        "trace_cache.stream_corpus_hits"), 1u);
    EXPECT_EQ(counterOf(cache.metricsRegistry(),
                        "trace_cache.stream_extractions"), 0u);
    EXPECT_EQ(cache.recordings(), 0u)
        << "warm stream load must not regenerate the workload";
    EXPECT_TRUE(*warm == *first);
}

TEST(StreamTier, WarmTraceLoadAdoptsStoredStream)
{
    const TempDir dir("adopt");
    const std::string workload = "go";
    const size_t ops = 20000;
    {
        TraceCache cache;
        cache.attachCorpus(std::make_shared<CorpusManager>(dir.path));
        cache.get(workload, ops);            // persists the trace
        cache.getStream(workload, ops);      // persists the stream
    }

    // A warm get() adopts the stored stream into the trace's lazy
    // BranchStream box, so sweep consumers skip extraction too.
    TraceCache cache;
    cache.attachCorpus(std::make_shared<CorpusManager>(dir.path));
    const SharedTrace trace = cache.get(workload, ops);
    EXPECT_EQ(counterOf(cache.corpus()->metricsRegistry(),
                        "stream_corpus.hits"), 1u);
    const BranchStream &adopted = trace.compact().branchStream();
    EXPECT_TRUE(adopted == BranchStream::extract(trace.compact()));
}

// ---------------------------------------------------------------
// Stream-container corruption suite
// ---------------------------------------------------------------

/** Damages the stored .tpbs file in place via @p mutate. */
template <typename Mutate>
void
streamCorruptionCase(const char *tag, Mutate &&mutate)
{
    const TempDir dir(tag);
    const std::string workload = "m88ksim";
    const size_t ops = 20000;
    const CorpusKey key{workload, 1, ops};

    std::shared_ptr<const BranchStream> clean;
    {
        TraceCache cache;
        cache.attachCorpus(std::make_shared<CorpusManager>(dir.path));
        clean = cache.getStream(workload, ops);
    }

    const fs::path path =
        fs::path(dir.path) / CorpusManager::streamFileName(key);
    ASSERT_TRUE(fs::exists(path));
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        std::vector<char> bytes(
            (std::istreambuf_iterator<char>(f)),
            std::istreambuf_iterator<char>());
        mutate(bytes);
        f.close();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    // The damaged container must be quarantined — never trusted — and
    // re-extraction from the (intact) trace must reproduce the clean
    // stream bit for bit.
    TraceCache cache;
    cache.attachCorpus(std::make_shared<CorpusManager>(dir.path));
    const auto stream = cache.getStream(workload, ops);
    ASSERT_NE(stream, nullptr);
    EXPECT_EQ(counterOf(cache.corpus()->metricsRegistry(),
                        "stream_corpus.quarantined"), 1u);
    EXPECT_TRUE(fs::exists(path.string() + ".quarantined"))
        << "damaged stream container must be moved aside";
    EXPECT_EQ(counterOf(cache.metricsRegistry(),
                        "trace_cache.stream_extractions"), 1u)
        << "quarantined stream must force re-extraction";
    EXPECT_EQ(cache.recordings(), 0u)
        << "the parent trace is intact; only the stream regenerates";
    EXPECT_TRUE(*stream == *clean);

    // The entry back under the original name is the fresh store: it
    // must fully verify, and the next cache is stream-warm again.
    {
        bool verified = false;
        for (const CorpusEntry &e : cache.corpus()->list(true))
            if (e.file == CorpusManager::streamFileName(key))
                verified = e.ok;
        EXPECT_TRUE(verified);
    }
    TraceCache warm;
    warm.attachCorpus(std::make_shared<CorpusManager>(dir.path));
    const auto again = warm.getStream(workload, ops);
    EXPECT_EQ(counterOf(warm.metricsRegistry(),
                        "trace_cache.stream_corpus_hits"), 1u);
    EXPECT_EQ(counterOf(warm.metricsRegistry(),
                        "trace_cache.stream_extractions"), 0u);
    EXPECT_TRUE(*again == *clean);
}

TEST(StreamCorruption, PayloadBitFlipIsQuarantined)
{
    streamCorruptionCase("bitflip", [](std::vector<char> &bytes) {
        ASSERT_GT(bytes.size(), 300u);
        bytes[bytes.size() / 2] ^= 0x10;  // flip one payload bit
    });
}

TEST(StreamCorruption, TruncationIsQuarantined)
{
    streamCorruptionCase("truncate", [](std::vector<char> &bytes) {
        ASSERT_GT(bytes.size(), 100u);
        bytes.resize(bytes.size() / 2);
    });
}

TEST(StreamCorruption, HeaderVersionSkewIsQuarantined)
{
    streamCorruptionCase("skew", [](std::vector<char> &bytes) {
        ASSERT_GT(bytes.size(), 8u);
        bytes[4] = 99;  // FileHeader.version (header CRC now stale
                        // too; either check may fire — both reject)
    });
}

TEST(StreamCorruption, ZeroLengthFileIsQuarantined)
{
    streamCorruptionCase("empty", [](std::vector<char> &bytes) {
        bytes.clear();
    });
}

// ---------------------------------------------------------------
// Segment-prefetch differential
// ---------------------------------------------------------------

TEST(SegmentPrefetch, PrefetchedExtractionIsBitIdentical)
{
    const TempDir dir("prefetch");
    const std::string workload = "gcc";
    const CorpusKey key{workload, 1, 30000};
    {
        CorpusManager corpus(dir.path);
        auto source = makeWorkload(workload, 1);
        corpus.storeSegmentedFromSource(key, *source, source->name(),
                                        4000);
    }

    PrefetchGuard guard;
    CorpusManager corpus(dir.path);
    const auto seg = corpus.loadSegmented(key, 4000);
    ASSERT_NE(seg, nullptr);
    ASSERT_GT(seg->segmentCount(), 2u);

    setSegmentPrefetchEnabled(false);
    const BranchStream sync = extractBranchStream(*seg);
    setSegmentPrefetchEnabled(true);
    const BranchStream prefetched = extractBranchStream(*seg);

    EXPECT_TRUE(sync == prefetched);
    EXPECT_GT(sync.size(), 0u);
}

// ---------------------------------------------------------------
// SIMD kernel differential
// ---------------------------------------------------------------

TEST(SimdKernels, MatchAndVictimAgreeWithScalar)
{
    ScalarGuard guard;
    std::mt19937_64 rng(0xbead5);
    for (size_t trial = 0; trial < 20000; ++trial) {
        const size_t ways = 1 + rng() % 12;
        std::vector<uint8_t> valid(ways);
        std::vector<uint64_t> tags(ways);
        std::vector<uint64_t> last_used(ways);
        for (size_t w = 0; w < ways; ++w) {
            valid[w] = rng() % 2;
            tags[w] = rng() % 4;       // small range forces duplicates
            last_used[w] = rng() % 8;  // small range forces ties
        }
        const uint64_t probe = rng() % 4;

        simd::setForceScalar(true);
        const size_t match_scalar =
            simd::findTagMatch(valid.data(), tags.data(), ways, probe);
        const size_t victim_scalar =
            simd::findVictim(valid.data(), last_used.data(), ways);
        simd::setForceScalar(false);
        EXPECT_EQ(simd::findTagMatch(valid.data(), tags.data(), ways,
                                     probe),
                  match_scalar);
        EXPECT_EQ(simd::findVictim(valid.data(), last_used.data(),
                                   ways),
                  victim_scalar);

        // The scalar contract itself: first valid match, first
        // invalid way, first minimum on ties.
        size_t want_match = simd::kNone;
        for (size_t w = 0; w < ways && want_match == simd::kNone; ++w)
            if (valid[w] && tags[w] == probe)
                want_match = w;
        EXPECT_EQ(match_scalar, want_match);
        ASSERT_LT(victim_scalar, ways);
    }
}

TEST(SimdKernels, SweepIsBitIdenticalScalarVsDispatched)
{
    ScalarGuard guard;
    const CompactTrace trace = sampleTrace(20000);
    const BranchStream stream = BranchStream::extract(trace);

    simd::setForceScalar(true);
    const std::vector<FrontendStats> scalar =
        runSweep(stream, sweepBatch());
    simd::setForceScalar(false);
    const std::vector<FrontendStats> dispatched =
        runSweep(stream, sweepBatch());

    ASSERT_EQ(scalar.size(), dispatched.size());
    for (size_t i = 0; i < scalar.size(); ++i)
        EXPECT_TRUE(sameStats(scalar[i], dispatched[i]));
}

// ---------------------------------------------------------------
// CRC32C hardware/software differential
// ---------------------------------------------------------------

TEST(Crc32c, HardwareAndSoftwarePathsAgree)
{
    std::mt19937_64 rng(0xc5c5);
    std::vector<uint8_t> buf(4096);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng());

    for (size_t trial = 0; trial < 2000; ++trial) {
        const size_t offset = rng() % 16;           // every alignment
        const size_t len = rng() % (buf.size() - offset);
        const uint8_t *p = buf.data() + offset;

        const uint32_t soft = crc32cUpdateSoftware(0, p, len);
        EXPECT_EQ(crc32cUpdate(0, p, len), soft);

        // Incremental chunking must be split-point invariant, and the
        // two implementations must interop mid-stream.
        const size_t cut = len > 0 ? rng() % len : 0;
        EXPECT_EQ(crc32cUpdate(crc32cUpdate(0, p, cut), p + cut,
                               len - cut),
                  soft);
        EXPECT_EQ(crc32cUpdate(crc32cUpdateSoftware(0, p, cut), p + cut,
                               len - cut),
                  soft);
    }
}

TEST(Crc32c, KnownAnswer)
{
    // RFC 3720 test vector: CRC32C of 32 zero bytes.
    const uint8_t zeros[32] = {};
    EXPECT_EQ(crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
    EXPECT_EQ(crc32cUpdateSoftware(0, zeros, sizeof(zeros)),
              0x8A9136AAu);
}

// ---------------------------------------------------------------
// Corpus ls / gc for derived stream containers
// ---------------------------------------------------------------

TEST(StreamCorpus, ListReportsArtifactKinds)
{
    const TempDir dir("kinds");
    CorpusManager corpus(dir.path);
    const CorpusKey key{"compress", 1, 10000};
    const SharedTrace trace = recordWorkload("compress", 10000, 1);
    corpus.store(key, trace.compact(), trace.name());
    corpus.storeSegmented(key, trace.compact(), trace.name(), 2500);
    corpus.storeStream(key, trace.compact().branchStream(),
                       trace.name());

    size_t plain = 0, segmented = 0, streams = 0;
    for (const CorpusEntry &e : corpus.list(true)) {
        EXPECT_TRUE(e.ok) << e.file << ": " << e.error;
        EXPECT_GT(e.fileBytes, 0u);
        switch (e.kind) {
          case CorpusArtifact::Plain:
            ++plain;
            break;
          case CorpusArtifact::Segmented:
            ++segmented;
            break;
          case CorpusArtifact::BranchStream:
            ++streams;
            EXPECT_EQ(e.file, CorpusManager::streamFileName(key));
            break;
        }
    }
    EXPECT_EQ(plain, 1u);
    EXPECT_EQ(segmented, 1u);
    EXPECT_EQ(streams, 1u);

    EXPECT_STREQ(corpusArtifactName(CorpusArtifact::Plain), "plain");
    EXPECT_STREQ(corpusArtifactName(CorpusArtifact::Segmented),
                 "segmented");
    EXPECT_STREQ(corpusArtifactName(CorpusArtifact::BranchStream),
                 "branch-stream");
}

TEST(StreamCorpus, GcCollectsOrphanedStreams)
{
    const TempDir dir("orphan");
    CorpusManager corpus(dir.path);
    const CorpusKey kept{"compress", 1, 10000};
    const CorpusKey orphan{"ijpeg", 1, 10000};
    for (const CorpusKey &key : {kept, orphan}) {
        const SharedTrace trace =
            recordWorkload(key.workload, key.ops, key.seed);
        corpus.store(key, trace.compact(), trace.name());
        corpus.storeStream(key, trace.compact().branchStream(),
                           trace.name());
    }

    // Both parents live: gc removes nothing.
    EXPECT_EQ(corpus.gc(), 0u);
    EXPECT_TRUE(fs::exists(corpus.streamPathFor(kept)));
    EXPECT_TRUE(fs::exists(corpus.streamPathFor(orphan)));

    // Drop one parent trace: its stream is now an orphan and must be
    // collected; the stream with a live parent must survive.
    ASSERT_TRUE(fs::remove(corpus.pathFor(orphan)));
    EXPECT_EQ(corpus.gc(), 1u);
    EXPECT_TRUE(fs::exists(corpus.streamPathFor(kept)));
    EXPECT_FALSE(fs::exists(corpus.streamPathFor(orphan)));
}

} // namespace
} // namespace tpred
