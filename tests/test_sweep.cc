/**
 * @file
 * Fused sweep-kernel tests: runSweep() must return FrontendStats
 * bit-identical to per-config runAccuracy() — across every Table 4-9
 * configuration on all workloads and seeds, under non-default front
 * ends, and on hostile traces that force forEachBranch's block-decode
 * fallback — plus HistorySpec grouping, BranchStream caching, and
 * serial-vs-parallel determinism of the sweep.* counters.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/paper_tables.hh"
#include "harness/sweep_kernel.hh"
#include "harness/trace_cache.hh"
#include "obs/metrics.hh"
#include "workloads/workload.hh"

namespace tpred
{
namespace
{

void
expectSameStats(const FrontendStats &want, const FrontendStats &got,
                const std::string &context)
{
    const auto ratio_eq = [&](const RatioStat &x, const RatioStat &y,
                              const char *field) {
        EXPECT_EQ(x.hits(), y.hits()) << context << " " << field;
        EXPECT_EQ(x.total(), y.total()) << context << " " << field;
    };
    EXPECT_EQ(want.instructions, got.instructions) << context;
    ratio_eq(want.allBranches, got.allBranches, "allBranches");
    ratio_eq(want.condDirection, got.condDirection, "condDirection");
    ratio_eq(want.condBranches, got.condBranches, "condBranches");
    ratio_eq(want.uncondDirect, got.uncondDirect, "uncondDirect");
    ratio_eq(want.indirectJumps, got.indirectJumps, "indirectJumps");
    ratio_eq(want.returns, got.returns, "returns");
    ratio_eq(want.btbHits, got.btbHits, "btbHits");
}

/** Tables 5/6/8's five path-history schemes. */
HistorySpec
schemeHistory(size_t scheme, unsigned bits_per_target,
              unsigned addr_bit_offset)
{
    switch (scheme) {
      case 0:
        return pathPerAddress(9, bits_per_target, addr_bit_offset);
      case 1:
        return pathGlobal(PathFilter::Branch, 9, bits_per_target,
                          addr_bit_offset);
      case 2:
        return pathGlobal(PathFilter::Control, 9, bits_per_target,
                          addr_bit_offset);
      case 3:
        return pathGlobal(PathFilter::IndJmp, 9, bits_per_target,
                          addr_bit_offset);
      default:
        return pathGlobal(PathFilter::CallRet, 9, bits_per_target,
                          addr_bit_offset);
    }
}

/** Every indirect-predictor configuration Tables 4-9 evaluate. */
std::vector<IndirectConfig>
allTableConfigs()
{
    const std::vector<unsigned> assocs = {1, 2, 4, 8, 16};
    std::vector<IndirectConfig> configs;
    // Table 4: tagless indexing schemes.
    configs.push_back(baselineConfig());
    configs.push_back(taglessGAg(9));
    configs.push_back(taglessGAs(8, 1));
    configs.push_back(taglessGAs(7, 2));
    configs.push_back(taglessGshare());
    // Table 5: path-history address-bit selection.
    for (unsigned offset : {2u, 4u, 6u, 8u, 10u})
        for (size_t s = 0; s < 5; ++s)
            configs.push_back(
                taglessGshare(schemeHistory(s, 1, offset)));
    // Table 6: bits per recorded target.
    for (unsigned bits = 1; bits <= 4; ++bits)
        for (size_t s = 0; s < 5; ++s)
            configs.push_back(
                taglessGshare(schemeHistory(s, bits, 2)));
    // Table 7: tagged set-index schemes x associativity.
    for (TaggedIndexScheme scheme :
         {TaggedIndexScheme::Address, TaggedIndexScheme::HistoryConcat,
          TaggedIndexScheme::HistoryXor})
        for (unsigned ways : assocs)
            configs.push_back(taggedConfig(scheme, ways));
    // Table 8: tagged cache over path histories.
    for (unsigned ways : assocs)
        for (size_t s = 0; s < 5; ++s)
            configs.push_back(
                taggedConfig(TaggedIndexScheme::HistoryXor, ways,
                             schemeHistory(s, 1, 2)));
    // Table 9: pattern-history length.
    for (unsigned ways : assocs)
        for (unsigned bits : {9u, 16u})
            configs.push_back(
                taggedConfig(TaggedIndexScheme::HistoryXor, ways,
                             patternHistory(bits)));
    return configs;
}

/**
 * A trace violating the fast branch-scan preconditions (redirects on
 * non-branch ops, memAddr/selector on branches, register escapes), so
 * every consumer — including BranchStream::extract — runs through
 * forEachBranch's block-decode fallback.  Indirect jumps rotate
 * through per-site target sets so the predictors have real work.
 */
std::vector<MicroOp>
hostileOps(size_t count)
{
    std::vector<MicroOp> ops;
    ops.reserve(count);
    uint64_t pc = 0x1000;
    size_t phase = 0;
    while (ops.size() < count) {
        MicroOp op;
        op.pc = pc;
        op.fallthrough = pc + 4;
        switch (phase++ % 7) {
          case 0:  // plain op
            op.nextPc = op.fallthrough;
            break;
          case 1:  // redirect on a non-branch (kills the fast scan)
            op.nextPc = pc + 0x40;
            break;
          case 2: {  // indirect jump with rotating targets + memAddr
            op.cls = InstClass::Branch;
            op.branch = (phase % 2) != 0 ? BranchKind::IndirectJump
                                         : BranchKind::IndirectCall;
            op.taken = true;
            op.memAddr = 0xbeef;  // hostile: memAddr on a branch
            op.selector = phase % 5;
            op.nextPc = 0x8000 + (phase % 3) * 0x100 + (pc & 0xff0);
            break;
          }
          case 3: {  // conditional, alternating direction
            op.cls = InstClass::Branch;
            op.branch = BranchKind::CondDirect;
            op.taken = (phase % 3) != 0;
            op.nextPc = op.taken ? pc + 0x80 : op.fallthrough;
            break;
          }
          case 4: {  // call
            op.cls = InstClass::Branch;
            op.branch = BranchKind::Call;
            op.taken = true;
            op.nextPc = pc + 0x200;
            op.dstReg = 300;  // hostile: register escape
            break;
          }
          case 5: {  // return to a mismatched address now and then
            op.cls = InstClass::Branch;
            op.branch = BranchKind::Return;
            op.taken = true;
            op.nextPc = (phase % 4 == 0) ? 0x4444 : pc - 0x1fc;
            break;
          }
          default:  // discontinuity: pc does not chain
            op.nextPc = op.fallthrough;
            pc += 0x1000;
            break;
        }
        pc = op.nextPc != 0 ? op.nextPc : pc + 4;
        ops.push_back(op);
    }
    return ops;
}

TEST(SweepKernel, GroupByHistoryPartitionsBySpec)
{
    const std::vector<IndirectConfig> configs = {
        taglessGshare(patternHistory(9)),   // group 0
        taglessGshare(patternHistory(8)),   // group 1
        taglessGAg(9),                      // group 0 (same spec)
        taglessGshare(pathGlobal(PathFilter::Branch)),   // group 2
        taglessGshare(pathGlobal(PathFilter::Control)),  // group 3
        taggedConfig(TaggedIndexScheme::HistoryXor, 4),  // group 0
    };
    const auto groups = groupByHistory(configs);
    ASSERT_EQ(groups.size(), 4u);
    EXPECT_EQ(groups[0], (std::vector<size_t>{0, 2, 5}));
    EXPECT_EQ(groups[1], (std::vector<size_t>{1}));
    EXPECT_EQ(groups[2], (std::vector<size_t>{3}));
    EXPECT_EQ(groups[3], (std::vector<size_t>{4}));
}

TEST(SweepKernel, EmptyBatchReturnsEmpty)
{
    const SharedTrace trace = cachedTrace("perl", 2000);
    EXPECT_TRUE(runSweep(trace, {}).empty());
}

TEST(SweepKernel, BranchStreamIsBuiltLazilyAndCached)
{
    const SharedTrace trace = recordWorkload("compress", 4000);
    EXPECT_FALSE(trace.compact().branchStreamBuilt());
    const BranchStream &first = trace.branchStream();
    EXPECT_TRUE(trace.compact().branchStreamBuilt());
    const BranchStream &second = trace.branchStream();
    EXPECT_EQ(&first, &second) << "stream must be built exactly once";
    EXPECT_EQ(first.opCount, trace.size());

    size_t builds = 0;
    (void)trace.compact().branchStream([&builds] { ++builds; });
    EXPECT_EQ(builds, 0u) << "cached stream must not rebuild";
}

/** The stream must match forEachBranch op-for-op, coherent traces. */
TEST(SweepKernel, BranchStreamMatchesForEachBranch)
{
    const SharedTrace trace = recordWorkload("gcc", 15000);
    const BranchStream &stream = trace.branchStream();
    size_t i = 0;
    trace.compact().forEachBranch([&](const MicroOp &op, size_t pos) {
        ASSERT_LT(i, stream.size());
        EXPECT_EQ(stream.pos[i], pos);
        EXPECT_EQ(stream.pc[i], op.pc);
        EXPECT_EQ(stream.target[i], op.nextPc);
        EXPECT_EQ(stream.fallthrough[i], op.fallthrough);
        EXPECT_EQ(static_cast<BranchKind>(stream.kind[i]), op.branch);
        EXPECT_EQ(stream.taken[i] != 0, op.taken);
        ++i;
    });
    EXPECT_EQ(i, stream.size());
}

/**
 * The headline equivalence claim: one fused batch over every Table
 * 4-9 configuration reproduces per-config runAccuracy() exactly, on
 * all eight workloads and two seeds each.
 */
TEST(SweepKernel, FusedMatchesSequentialOnAllTableConfigs)
{
    const std::vector<IndirectConfig> configs = allTableConfigs();
    for (const std::string &name : spec95Names()) {
        for (uint64_t seed : {1u, 2u}) {
            const SharedTrace trace = recordWorkload(name, 6000, seed);
            const std::vector<FrontendStats> fused =
                runSweep(trace, configs);
            ASSERT_EQ(fused.size(), configs.size());
            for (size_t c = 0; c < configs.size(); ++c) {
                expectSameStats(
                    runAccuracy(trace, configs[c]), fused[c],
                    name + "/seed" + std::to_string(seed) + "/" +
                        configs[c].describe());
            }
        }
    }
}

/** Non-default front ends must fuse just as exactly. */
TEST(SweepKernel, FusedMatchesSequentialUnderAlternateFrontends)
{
    const std::vector<IndirectConfig> configs = {
        baselineConfig(), taglessGshare(),
        taggedConfig(TaggedIndexScheme::HistoryXor, 4),
        cascadedConfig(), ittageConfig(), oracleConfig(),
    };
    const SharedTrace trace = recordWorkload("perl", 12000);

    FrontendConfig two_bit = twoBitBtbFrontend();
    FrontendConfig tourney;
    tourney.direction = DirectionScheme::Tournament;
    for (const FrontendConfig &fe : {two_bit, tourney}) {
        const std::vector<FrontendStats> fused =
            runSweep(trace, configs, fe);
        for (size_t c = 0; c < configs.size(); ++c)
            expectSameStats(runAccuracy(trace, configs[c], fe),
                            fused[c], configs[c].describe());
    }
}

/**
 * Hostile traces take forEachBranch's block-decode fallback; the
 * BranchStream extractor rides the same path, so the fused kernel
 * must still be bit-identical to the sequential one.
 */
TEST(SweepKernel, FusedMatchesSequentialOnHostileTraces)
{
    const SharedTrace trace(hostileOps(3000), "hostile");
    ASSERT_FALSE(trace.compact().fastBranchScan())
        << "trace must force the block-decode fallback";

    const std::vector<IndirectConfig> configs = {
        baselineConfig(),
        taglessGshare(),
        taglessGshare(pathPerAddress(9)),
        taglessGshare(pathGlobal(PathFilter::CallRet)),
        taggedConfig(TaggedIndexScheme::HistoryXor, 4),
        cascadedConfig(),
        ittageConfig(),
        oracleConfig(),
    };
    const std::vector<FrontendStats> fused = runSweep(trace, configs);
    ASSERT_EQ(fused.size(), configs.size());
    EXPECT_GT(fused[1].indirectJumps.total(), 0u)
        << "hostile trace must actually exercise indirect jumps";
    for (size_t c = 0; c < configs.size(); ++c)
        expectSameStats(runAccuracy(trace, configs[c]), fused[c],
                        configs[c].describe());
}

void
expectSameCoreResult(const CoreResult &want, const CoreResult &got,
                     const std::string &context)
{
    EXPECT_EQ(want.cycles, got.cycles) << context;
    EXPECT_EQ(want.instructions, got.instructions) << context;
    EXPECT_EQ(want.stallCyclesByKind, got.stallCyclesByKind)
        << context << " penalty breakdown";
    EXPECT_EQ(want.dcache.hits, got.dcache.hits) << context;
    EXPECT_EQ(want.dcache.misses, got.dcache.misses) << context;
    expectSameStats(want.frontend, got.frontend, context);
}

/** One config per predictor family, lead first. */
std::vector<IndirectConfig>
timingFamilyConfigs()
{
    return {
        taglessGshare(),                                  // lead
        baselineConfig(),                                 // BTB-only
        taglessGshare(patternHistory(12), 9),
        taggedConfig(TaggedIndexScheme::HistoryXor, 4),
        taggedConfig(TaggedIndexScheme::Address, 2),
        cascadedConfig(),
        ittageConfig(),  // scalar: internal per-config path
        oracleConfig(),  // scalar: internal per-config path
    };
}

/**
 * The fused-timing equivalence claim: one shared core trajectory plus
 * copy-on-divergence forks reproduces per-config runTiming() exactly
 * — cycles, penalty breakdown, front-end stats and dcache — for every
 * predictor family (ITTAGE and the oracle ride the internal
 * per-config path) across workloads and seeds.
 */
TEST(SweepKernel, FusedTimingMatchesPerConfig)
{
    const std::vector<IndirectConfig> configs = timingFamilyConfigs();
    for (const std::string &name : {"gcc", "perl", "xlisp"}) {
        for (uint64_t seed : {1u, 2u}) {
            const SharedTrace trace = recordWorkload(name, 8000, seed);
            const std::vector<CoreResult> fused =
                runTimingSweep(trace, configs);
            ASSERT_EQ(fused.size(), configs.size());
            for (size_t c = 0; c < configs.size(); ++c) {
                expectSameCoreResult(
                    runTiming(trace, configs[c]), fused[c],
                    name + "/seed" + std::to_string(seed) + "/" +
                        configs[c].describe());
            }
        }
    }
}

/** Non-default core and front-end parameters must fuse exactly too. */
TEST(SweepKernel, FusedTimingMatchesPerConfigUnderAlternateMachines)
{
    const std::vector<IndirectConfig> configs = {
        taglessGshare(),
        taggedConfig(TaggedIndexScheme::HistoryXor, 4),
        cascadedConfig(),
    };
    const SharedTrace trace = recordWorkload("perl", 10000);

    CoreParams narrow;
    narrow.width = 4;
    narrow.window = 32;
    narrow.fuCount = 4;
    FrontendConfig tourney;
    tourney.direction = DirectionScheme::Tournament;

    const std::vector<CoreResult> fused =
        runTimingSweep(trace, configs, narrow, tourney);
    for (size_t c = 0; c < configs.size(); ++c)
        expectSameCoreResult(
            runTiming(trace, configs[c], narrow, tourney), fused[c],
            configs[c].describe());
}

/**
 * Hostile traces force the block-decode fallback in the branch-stream
 * extractor, and the fused loop suspends the lead core at stream.pos
 * boundaries — both must stay exact there.
 */
TEST(SweepKernel, FusedTimingMatchesPerConfigOnHostileTraces)
{
    // The core model contracts registers to [0, kNumArchRegs); clamp
    // the fixture's deliberate register escapes (the accuracy tests
    // keep them — they never touch the core).  The redirect-on-non-
    // branch and memAddr-on-branch ops still force the fallback scan.
    std::vector<MicroOp> ops = hostileOps(3000);
    for (MicroOp &op : ops) {
        if (op.dstReg != kNoReg && op.dstReg >= kNumArchRegs)
            op.dstReg = 33;
    }
    const SharedTrace trace(std::move(ops), "hostile");
    ASSERT_FALSE(trace.compact().fastBranchScan());
    const std::vector<IndirectConfig> configs = {
        taglessGshare(),
        taggedConfig(TaggedIndexScheme::HistoryXor, 4),
        cascadedConfig(),
        baselineConfig(),
    };
    const std::vector<CoreResult> fused = runTimingSweep(trace, configs);
    for (size_t c = 0; c < configs.size(); ++c)
        expectSameCoreResult(runTiming(trace, configs[c]), fused[c],
                             configs[c].describe());
}

/**
 * Deterministic-counter contract of the fused timing sweep: the
 * core.* and experiment.* counters must equal N per-config runTiming()
 * calls exactly, and the fork accounting (sweep.timing_forks /
 * shared_cycles / member_cycles, phase.sweep_timing) must be
 * populated.
 */
TEST(SweepKernel, FusedTimingCountersMatchPerConfig)
{
    const std::vector<IndirectConfig> configs = timingFamilyConfigs();
    const SharedTrace trace = recordWorkload("gcc", 10000);
    (void)trace.branchStream();  // both paths see a cached stream

    obs::globalMetrics().reset();
    for (const IndirectConfig &config : configs)
        (void)runTiming(trace, config);
    const obs::MetricsSnapshot ref = obs::globalMetrics().snapshot();

    obs::globalMetrics().reset();
    (void)runTimingSweep(trace, configs);
    const obs::MetricsSnapshot fused = obs::globalMetrics().snapshot();

    for (const char *key :
         {"core.cycles_simulated", "core.instructions_retired",
          "experiment.timing_runs", "experiment.instructions_replayed"})
        EXPECT_EQ(fused.counters.at(key), ref.counters.at(key)) << key;

    // This family mix diverges quickly, so forks must have happened,
    // and every fork splits the member's cycles into a shared prefix
    // and a private suffix.
    EXPECT_GT(fused.counters.at("sweep.timing_forks"), 0u);
    EXPECT_GT(fused.counters.at("sweep.shared_cycles"), 0u);
    EXPECT_GT(fused.counters.at("sweep.member_cycles"), 0u);
    EXPECT_GT(fused.timers.at("phase.sweep_timing").count, 0u);

    // The per-config path never forks (the counter is either absent
    // or zero, depending on what ran earlier in this process).
    const auto ref_forks = ref.counters.find("sweep.timing_forks");
    EXPECT_TRUE(ref_forks == ref.counters.end() ||
                ref_forks->second == 0u);
}

/**
 * sweep.* counters are deterministic: one-thread and four-thread
 * renders of the same fused table must produce identical values (the
 * serial-vs-parallel cell equality itself is covered by the fused
 * drivers inside test_paper_tables_differential).
 */
TEST(SweepKernel, CountersAgreeSerialVsParallel)
{
    const auto run = [](unsigned threads) {
        obs::globalMetrics().reset();
        globalTraceCache().clear();
        const TableOptions opt{/*ops=*/20000, ExecMode::Parallel,
                               threads};
        (void)renderTable4(opt);
        return obs::globalMetrics().snapshot();
    };
    const obs::MetricsSnapshot serial = run(1);
    const obs::MetricsSnapshot parallel = run(4);
    EXPECT_EQ(serial.counters, parallel.counters);
    EXPECT_GT(serial.counters.at("sweep.batches"), 0u);
    EXPECT_GT(serial.counters.at("sweep.configs"),
              serial.counters.at("sweep.batches"))
        << "Table 4 batches multiple configs per sweep";
    EXPECT_GT(serial.counters.at("sweep.branches"), 0u);
    // Two headline workloads, one cached stream each.
    EXPECT_EQ(serial.counters.at("sweep.streams_built"), 2u);
}

} // namespace
} // namespace tpred
