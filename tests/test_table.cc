/** @file Unit tests for the ASCII table formatter. */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace tpred
{
namespace
{

TEST(Table, RendersHeaderAndRule)
{
    Table table;
    table.setHeader({"a", "bb"});
    table.addRow({"1", "2"});
    std::string out = table.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(Table, AlignsColumns)
{
    Table table;
    table.setHeader({"name", "v"});
    table.addRow({"x", "10"});
    table.addRow({"longer", "3"});
    std::string out = table.render();
    // Both value cells start at the same column.
    size_t line1 = out.find("x");
    size_t line2 = out.find("longer");
    size_t col1 = out.find("10", line1) - out.rfind('\n', line1);
    size_t col2 = out.find("3", line2) - out.rfind('\n', line2);
    EXPECT_EQ(col1, col2);
}

TEST(Table, RaggedRowsAllowed)
{
    Table table;
    table.addRow({"only-one"});
    table.addRow({"a", "b", "c"});
    EXPECT_NO_THROW({ auto s = table.render(); (void)s; });
    EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RuleBetweenRows)
{
    Table table;
    table.addRow({"x"});
    table.addRule();
    table.addRow({"y"});
    std::string out = table.render();
    size_t x = out.find("x");
    size_t dash = out.find("---", x);
    size_t y = out.find("y", dash);
    EXPECT_NE(dash, std::string::npos);
    EXPECT_NE(y, std::string::npos);
}

TEST(Table, EmptyTableRendersNothing)
{
    Table table;
    EXPECT_EQ(table.render(), "");
    EXPECT_EQ(table.renderCsv(), "");
}

TEST(Table, CsvBasics)
{
    Table table;
    table.setHeader({"a", "b"});
    table.addRow({"1", "2"});
    table.addRule();  // skipped in CSV
    table.addRow({"3", "4"});
    EXPECT_EQ(table.renderCsv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, CsvQuotesSpecialCells)
{
    Table table;
    table.addRow({"has,comma", "has\"quote"});
    EXPECT_EQ(table.renderCsv(),
              "\"has,comma\",\"has\"\"quote\"\n");
}

} // namespace
} // namespace tpred
