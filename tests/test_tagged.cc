/** @file Unit tests for the tagged target cache (paper §3.2, Fig 11). */

#include <gtest/gtest.h>

#include "core/tagged_target_cache.hh"

namespace tpred
{
namespace
{

TaggedConfig
cfg(TaggedIndexScheme scheme, unsigned entries = 256, unsigned ways = 4,
    unsigned history_bits = 9)
{
    TaggedConfig config;
    config.scheme = scheme;
    config.entries = entries;
    config.ways = ways;
    config.historyBits = history_bits;
    return config;
}

TEST(Tagged, MissOnEmpty)
{
    TaggedTargetCache cache(cfg(TaggedIndexScheme::HistoryXor));
    EXPECT_FALSE(cache.predict(0x100, 0).has_value());
    EXPECT_EQ(cache.validEntries(), 0u);
}

TEST(Tagged, HitAfterUpdate)
{
    TaggedTargetCache cache(cfg(TaggedIndexScheme::HistoryXor));
    cache.update(0x100, 0b1010, 0x2000);
    auto pred = cache.predict(0x100, 0b1010);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(*pred, 0x2000u);
}

TEST(Tagged, DifferentHistoryMisses)
{
    // Tags remove interference: a different history probes a
    // different entry and abstains instead of guessing.
    TaggedTargetCache cache(cfg(TaggedIndexScheme::HistoryXor));
    cache.update(0x100, 0b1010, 0x2000);
    EXPECT_FALSE(cache.predict(0x100, 0b0101).has_value());
}

TEST(Tagged, DifferentBranchMisses)
{
    TaggedTargetCache cache(cfg(TaggedIndexScheme::HistoryXor));
    cache.update(0x100, 0b1010, 0x2000);
    EXPECT_FALSE(cache.predict(0x10000, 0b1010).has_value());
}

TEST(Tagged, UpdateOverwritesSameIndex)
{
    TaggedTargetCache cache(cfg(TaggedIndexScheme::HistoryXor));
    cache.update(0x100, 0b1010, 0x2000);
    cache.update(0x100, 0b1010, 0x3000);
    EXPECT_EQ(*cache.predict(0x100, 0b1010), 0x3000u);
    EXPECT_EQ(cache.validEntries(), 1u);
}

TEST(Tagged, AddressSchemeMapsAllTargetsOfAJumpToOneSet)
{
    // The paper's observation about the Address scheme: every history
    // variant of one jump lands in the same set, so low associativity
    // thrashes (Table 7).
    TaggedTargetCache cache(cfg(TaggedIndexScheme::Address));
    const auto [set_a, tag_a] = cache.indexOf(0x100, 0b0001);
    const auto [set_b, tag_b] = cache.indexOf(0x100, 0b1110);
    EXPECT_EQ(set_a, set_b);
    EXPECT_NE(tag_a, tag_b);
}

TEST(Tagged, HistorySchemesSpreadTargetsOfAJumpAcrossSets)
{
    for (auto scheme : {TaggedIndexScheme::HistoryConcat,
                        TaggedIndexScheme::HistoryXor}) {
        TaggedTargetCache cache(cfg(scheme));
        const auto [set_a, tag_a] = cache.indexOf(0x100, 0b000001);
        const auto [set_b, tag_b] = cache.indexOf(0x100, 0b111110);
        EXPECT_NE(set_a, set_b) << taggedIndexSchemeName(scheme);
        (void)tag_a;
        (void)tag_b;
    }
}

TEST(Tagged, AddressSchemeThrashesDirectMapped)
{
    // Direct-mapped Address-indexed cache, one jump with 4 history
    // contexts: conflict misses every round after warmup.
    TaggedTargetCache cache(cfg(TaggedIndexScheme::Address, 256, 1));
    int hits = 0;
    for (int round = 0; round < 50; ++round) {
        for (uint64_t h = 0; h < 4; ++h) {
            hits += cache.predict(0x100, h).has_value();
            cache.update(0x100, h, 0x1000 + h * 8);
        }
    }
    EXPECT_EQ(hits, 0);

    // The same stream on a History-XOR cache hits after warmup.
    TaggedTargetCache xcache(cfg(TaggedIndexScheme::HistoryXor, 256, 1));
    int xhits = 0;
    for (int round = 0; round < 50; ++round) {
        for (uint64_t h = 0; h < 4; ++h) {
            xhits += xcache.predict(0x100, h).has_value();
            xcache.update(0x100, h, 0x1000 + h * 8);
        }
    }
    EXPECT_GT(xhits, 150);
}

TEST(Tagged, FourWayHoldsFourHistoriesOfOneJumpUnderAddressScheme)
{
    TaggedTargetCache cache(cfg(TaggedIndexScheme::Address, 256, 4));
    for (uint64_t h = 0; h < 4; ++h)
        cache.update(0x100, h, 0x1000 + h * 8);
    for (uint64_t h = 0; h < 4; ++h)
        EXPECT_EQ(cache.predict(0x100, h).value(), 0x1000 + h * 8);
}

TEST(Tagged, LruEvictionWithinSet)
{
    // 2 entries, 2 ways -> 1 set.  Three (pc, history) pairs compete.
    TaggedTargetCache cache(cfg(TaggedIndexScheme::HistoryXor, 2, 2));
    cache.update(0x100, 0, 0x1000);
    cache.update(0x200, 0, 0x2000);
    EXPECT_TRUE(cache.predict(0x100, 0).has_value());  // refresh LRU
    cache.update(0x300, 0, 0x3000);
    EXPECT_TRUE(cache.predict(0x100, 0).has_value());
    EXPECT_FALSE(cache.predict(0x200, 0).has_value());
    EXPECT_TRUE(cache.predict(0x300, 0).has_value());
}

TEST(Tagged, FullyAssociativeSingleSet)
{
    TaggedConfig config = cfg(TaggedIndexScheme::HistoryXor, 16, 16);
    EXPECT_EQ(config.sets(), 1u);
    TaggedTargetCache cache(config);
    for (uint64_t i = 0; i < 16; ++i)
        cache.update(0x100 + i * 4, 0, 0x1000 + i);
    EXPECT_EQ(cache.validEntries(), 16u);
}

TEST(Tagged, CostIncludesTagBits)
{
    TaggedTargetCache cache(cfg(TaggedIndexScheme::HistoryXor, 256, 4));
    EXPECT_EQ(cache.costBits(), 256u * (32 + 16));
}

/** Property: round trip across schemes, associativities and history
 *  lengths (paper Tables 7 and 9 dimensions). */
class TaggedRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<TaggedIndexScheme, unsigned, unsigned>>
{
};

TEST_P(TaggedRoundTrip, UpdateThenPredictRoundTrips)
{
    auto [scheme, ways, history_bits] = GetParam();
    TaggedTargetCache cache(cfg(scheme, 256, ways, history_bits));
    // Few enough distinct pairs that nothing is evicted.
    for (uint64_t i = 0; i < 8; ++i) {
        const uint64_t pc = 0x1000 + i * 64;
        const uint64_t hist = i * 31;
        cache.update(pc, hist, 0x9000 + i * 4);
        ASSERT_TRUE(cache.predict(pc, hist).has_value());
        EXPECT_EQ(*cache.predict(pc, hist), 0x9000 + i * 4);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesWaysHistory, TaggedRoundTrip,
    ::testing::Combine(::testing::Values(TaggedIndexScheme::Address,
                                         TaggedIndexScheme::HistoryConcat,
                                         TaggedIndexScheme::HistoryXor),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u),
                       ::testing::Values(9u, 16u)));

/** Property: the set index is always within range. */
class TaggedIndexRange
    : public ::testing::TestWithParam<TaggedIndexScheme>
{
};

TEST_P(TaggedIndexRange, SetWithinRange)
{
    TaggedConfig config = cfg(GetParam(), 256, 4);
    TaggedTargetCache cache(config);
    for (uint64_t i = 0; i < 500; ++i) {
        auto [set, tag] = cache.indexOf(0xabc000 + i * 4, i * 0x123);
        EXPECT_LT(set, config.sets());
        EXPECT_LE(tag, (uint64_t{1} << config.tagBits) - 1);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TaggedIndexRange,
                         ::testing::Values(TaggedIndexScheme::Address,
                                           TaggedIndexScheme::HistoryConcat,
                                           TaggedIndexScheme::HistoryXor));

} // namespace
} // namespace tpred
