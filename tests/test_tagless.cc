/** @file Unit tests for the tagless target cache (paper §3.2, Fig 10). */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "core/tagless_target_cache.hh"

namespace tpred
{
namespace
{

TaglessConfig
cfg(TaglessIndexScheme scheme, unsigned entry_bits = 9,
    unsigned history_bits = 9, unsigned addr_bits = 0)
{
    TaglessConfig config;
    config.scheme = scheme;
    config.entryBits = entry_bits;
    config.historyBits = history_bits;
    config.addrBits = addr_bits;
    return config;
}

TEST(Tagless, ColdEntryPredictsZero)
{
    TaglessTargetCache cache(cfg(TaglessIndexScheme::Gshare));
    auto pred = cache.predict(0x100, 0);
    ASSERT_TRUE(pred.has_value());  // tagless always predicts
    EXPECT_EQ(*pred, 0u);
}

TEST(Tagless, LearnsTargetPerHistory)
{
    TaglessTargetCache cache(cfg(TaglessIndexScheme::Gshare));
    cache.update(0x100, 0b1010, 0x2000);
    cache.update(0x100, 0b0101, 0x3000);
    EXPECT_EQ(*cache.predict(0x100, 0b1010), 0x2000u);
    EXPECT_EQ(*cache.predict(0x100, 0b0101), 0x3000u);
}

TEST(Tagless, GAgIgnoresAddress)
{
    TaglessTargetCache cache(cfg(TaglessIndexScheme::GAg));
    EXPECT_EQ(cache.indexOf(0x100, 0b111), cache.indexOf(0x9999, 0b111));
    cache.update(0x100, 0b111, 0x2000);
    // Another branch with the same history reads the same entry:
    // the interference the paper describes.
    EXPECT_EQ(*cache.predict(0x5550, 0b111), 0x2000u);
}

TEST(Tagless, GshareMixesAddressAndHistory)
{
    TaglessTargetCache cache(cfg(TaglessIndexScheme::Gshare));
    EXPECT_EQ(cache.indexOf(0x100, 0b11),
              ((0x100 >> 2) ^ 0b11) & mask(9));
    EXPECT_NE(cache.indexOf(0x100, 0b11), cache.indexOf(0x104, 0b11));
}

TEST(Tagless, GAsPartitionsByAddress)
{
    // GAs(7,2): 2 address bits select the sub-table, 7 history bits
    // the entry within it.
    TaglessTargetCache cache(cfg(TaglessIndexScheme::GAs, 9, 7, 2));
    const uint64_t idx = cache.indexOf(0x104, 0b1010101);
    EXPECT_EQ(idx >> 7, (0x104 >> 2) & 0b11u);
    EXPECT_EQ(idx & mask(7), 0b1010101u);
    // Branches in different sub-tables never interfere.
    cache.update(0x100, 0b1, 0x2000);
    cache.update(0x104, 0b1, 0x3000);
    EXPECT_EQ(*cache.predict(0x100, 0b1), 0x2000u);
    EXPECT_EQ(*cache.predict(0x104, 0b1), 0x3000u);
}

TEST(Tagless, HistoryMaskedToConfiguredBits)
{
    TaglessTargetCache cache(cfg(TaglessIndexScheme::GAg, 4, 4));
    EXPECT_EQ(cache.indexOf(0, 0xf0f), 0xfu);
}

TEST(Tagless, InterferenceOverwrites)
{
    // Two different branches hashing to the same entry displace each
    // other's target — the motivation for the tagged variant.
    TaglessTargetCache cache(cfg(TaglessIndexScheme::GAg, 4, 4));
    cache.update(0x100, 0b0011, 0x2000);
    cache.update(0x777000, 0b0011, 0x5000);
    EXPECT_EQ(*cache.predict(0x100, 0b0011), 0x5000u);
}

TEST(Tagless, CostIs32BitsPerEntry)
{
    TaglessTargetCache cache(cfg(TaglessIndexScheme::Gshare, 9));
    EXPECT_EQ(cache.costBits(), 512u * 32u);
}

TEST(Tagless, DescribeMentionsSchemeAndSize)
{
    TaglessTargetCache gag(cfg(TaglessIndexScheme::GAg, 9, 9));
    EXPECT_NE(gag.describe().find("GAg(9)"), std::string::npos);
    EXPECT_NE(gag.describe().find("512"), std::string::npos);
    TaglessTargetCache gas(cfg(TaglessIndexScheme::GAs, 9, 7, 2));
    EXPECT_NE(gas.describe().find("GAs(7,2)"), std::string::npos);
}

/** Property: for every scheme, update-then-predict with the same
 *  (pc, history) returns the stored target. */
class TaglessRoundTrip
    : public ::testing::TestWithParam<TaglessIndexScheme>
{
};

TEST_P(TaglessRoundTrip, UpdateThenPredictRoundTrips)
{
    TaglessConfig config = cfg(GetParam());
    if (GetParam() == TaglessIndexScheme::GAs) {
        config.historyBits = 7;
        config.addrBits = 2;
    }
    TaglessTargetCache cache(config);
    for (uint64_t i = 0; i < 200; ++i) {
        const uint64_t pc = 0x1000 + i * 4;
        const uint64_t hist = (i * 37) & 0x1ff;
        const uint64_t target = 0x40000 + i * 8;
        cache.update(pc, hist, target);
        EXPECT_EQ(*cache.predict(pc, hist), target);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TaglessRoundTrip,
                         ::testing::Values(TaglessIndexScheme::GAg,
                                           TaglessIndexScheme::GAs,
                                           TaglessIndexScheme::Gshare));

/** Property: indexes always fall inside the table. */
class TaglessIndexRange
    : public ::testing::TestWithParam<std::tuple<TaglessIndexScheme,
                                                 unsigned>>
{
};

TEST_P(TaglessIndexRange, IndexInRange)
{
    auto [scheme, entry_bits] = GetParam();
    TaglessConfig config = cfg(scheme, entry_bits, entry_bits);
    if (scheme == TaglessIndexScheme::GAs) {
        config.historyBits = entry_bits - 1;
        config.addrBits = 1;
    }
    TaglessTargetCache cache(config);
    for (uint64_t i = 0; i < 500; ++i) {
        const uint64_t idx =
            cache.indexOf(0xfffff000 + i * 4, i * 0x9e37);
        EXPECT_LT(idx, config.entries());
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSizes, TaglessIndexRange,
    ::testing::Combine(::testing::Values(TaglessIndexScheme::GAg,
                                         TaglessIndexScheme::GAs,
                                         TaglessIndexScheme::Gshare),
                       ::testing::Values(4u, 9u, 12u)));

} // namespace
} // namespace tpred
