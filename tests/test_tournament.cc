/** @file Unit tests for the McFarling tournament predictor. */

#include <gtest/gtest.h>

#include "bpred/tournament.hh"
#include "common/rng.hh"

namespace tpred
{
namespace
{

TEST(Tournament, LearnsStrongBias)
{
    TournamentPredictor pred;
    for (int i = 0; i < 8; ++i)
        pred.update(0x100, 0, true);
    EXPECT_TRUE(pred.predict(0x100, 0));
}

TEST(Tournament, BimodalWinsOnHistoryNoise)
{
    // A biased branch probed under random histories: gshare's PHT
    // fragments, bimodal nails it — the chooser must migrate.
    TournamentPredictor pred;
    Rng rng(3);
    int wrong = 0;
    for (int i = 0; i < 4000; ++i) {
        const uint64_t history = rng.below(1 << 12);
        const bool taken = rng.chance(0.95);
        if (i > 1000)
            wrong += pred.predict(0x100, history) != taken;
        pred.update(0x100, history, taken);
    }
    // Close to the 5% noise floor, far from gshare-fragmenting chaos.
    EXPECT_LT(wrong, 3000 * 0.12);
}

TEST(Tournament, GshareWinsOnAlternatingPattern)
{
    TournamentPredictor pred;
    uint64_t history = 0;
    int wrong = 0;
    bool outcome = false;
    for (int i = 0; i < 4000; ++i) {
        outcome = !outcome;
        if (i > 1000)
            wrong += pred.predict(0x40c, history) != outcome;
        pred.update(0x40c, history, outcome);
        history = (history << 1 | outcome) & 0xfff;
    }
    EXPECT_LT(wrong, 3000 * 0.02);
    EXPECT_GT(pred.gshareShare(), 0.2);
}

TEST(Tournament, HandlesMixedBranchPopulation)
{
    // One alternating branch (gshare-friendly) plus one biased branch
    // under noisy history (bimodal-friendly) — the tournament must do
    // well on BOTH, which neither component alone can.
    TournamentPredictor pred;
    Rng rng(5);
    uint64_t history = 0;
    int wrong = 0, total = 0;
    bool alt = false;
    for (int i = 0; i < 6000; ++i) {
        alt = !alt;
        if (i > 2000) {
            ++total;
            wrong += pred.predict(0x100, history) != alt;
        }
        pred.update(0x100, history, alt);
        history = (history << 1 | alt) & 0xfff;

        const bool biased = rng.chance(0.97);
        if (i > 2000) {
            ++total;
            wrong += pred.predict(0x2000, history) != biased;
        }
        pred.update(0x2000, history, biased);
        history = (history << 1 | biased) & 0xfff;
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.06);
}

} // namespace
} // namespace tpred
