/** @file Unit tests for binary trace serialization. */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "test_util.hh"
#include "trace/compact_io.hh"
#include "trace/trace_io.hh"
#include "workloads/workload.hh"

namespace tpred
{
namespace
{

std::vector<MicroOp>
sampleOps()
{
    std::vector<MicroOp> ops;
    ops.push_back(test::plainOp(0x100, InstClass::Load));
    ops.back().memAddr = 0xbeef8;
    ops.push_back(test::indirectOp(0x104, 0x4000, 7));
    ops.push_back(test::branchOp(0x4000, BranchKind::CondDirect, 0x200,
                                 false));
    return ops;
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    std::stringstream buffer;
    writeTrace(buffer, sampleOps(), "sample");

    std::string name;
    auto ops = readTrace(buffer, name);
    EXPECT_EQ(name, "sample");
    ASSERT_EQ(ops.size(), 3u);

    EXPECT_EQ(ops[0].pc, 0x100u);
    EXPECT_EQ(ops[0].cls, InstClass::Load);
    EXPECT_EQ(ops[0].memAddr, 0xbeef8u);
    EXPECT_EQ(ops[0].fallthrough, 0x104u);

    EXPECT_EQ(ops[1].branch, BranchKind::IndirectJump);
    EXPECT_EQ(ops[1].nextPc, 0x4000u);
    EXPECT_EQ(ops[1].selector, 7u);
    EXPECT_TRUE(ops[1].taken);

    EXPECT_EQ(ops[2].branch, BranchKind::CondDirect);
    EXPECT_FALSE(ops[2].taken);
    EXPECT_EQ(ops[2].nextPc, 0x4004u);
}

TEST(TraceIo, RoundTripRegisters)
{
    auto ops = sampleOps();
    ops[0].dstReg = 12;
    ops[0].srcRegs = {3, kNoReg};
    std::stringstream buffer;
    writeTrace(buffer, ops, "r");
    std::string name;
    auto back = readTrace(buffer, name);
    EXPECT_EQ(back[0].dstReg, 12);
    EXPECT_EQ(back[0].srcRegs[0], 3);
    EXPECT_EQ(back[0].srcRegs[1], kNoReg);
}

TEST(TraceIo, EmptyTrace)
{
    std::stringstream buffer;
    writeTrace(buffer, std::vector<MicroOp>{}, "");
    std::string name;
    auto ops = readTrace(buffer, name);
    EXPECT_TRUE(ops.empty());
    EXPECT_TRUE(name.empty());
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream buffer("this is not a trace file at all......");
    std::string name;
    EXPECT_THROW(readTrace(buffer, name), std::runtime_error);
}

TEST(TraceIo, RejectsTruncation)
{
    std::stringstream buffer;
    writeTrace(buffer, sampleOps(), "t");
    std::string data = buffer.str();
    std::stringstream cut(data.substr(0, data.size() - 10));
    std::string name;
    EXPECT_THROW(readTrace(cut, name), std::runtime_error);
}

TEST(TraceIo, RejectsWrongVersion)
{
    std::stringstream buffer;
    writeTrace(buffer, std::vector<MicroOp>{}, "v");
    std::string data = buffer.str();
    data[4] = 99;  // clobber the version field
    std::stringstream bad(data);
    std::string name;
    EXPECT_THROW(readTrace(bad, name), std::runtime_error);
}

TEST(TraceIo, FileRoundTripOfWorkloadTrace)
{
    auto workload = makeWorkload("compress", 3);
    auto ops = drainTrace(*workload, 5000);
    const std::string path = "/tmp/tpred_test_trace.tpr";
    saveTraceFile(path, ops, "compress");

    std::string name;
    auto back = loadTraceFile(path, name);
    EXPECT_EQ(name, "compress");
    ASSERT_EQ(back.size(), ops.size());
    for (size_t i = 0; i < ops.size(); i += 101) {
        EXPECT_EQ(back[i].pc, ops[i].pc);
        EXPECT_EQ(back[i].nextPc, ops[i].nextPc);
        EXPECT_EQ(back[i].cls, ops[i].cls);
        EXPECT_EQ(back[i].branch, ops[i].branch);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows)
{
    std::string name;
    EXPECT_THROW(loadTraceFile("/nonexistent/path.tpr", name),
                 std::runtime_error);
}

TEST(TraceIo, LegacyV1FilesStayReadable)
{
    const auto ops = sampleOps();
    std::stringstream buffer;
    writeTraceV1(buffer, ops, "old");

    std::string name;
    const auto back = readTrace(buffer, name);
    EXPECT_EQ(name, "old");
    ASSERT_EQ(back.size(), ops.size());
    EXPECT_EQ(back[1].branch, BranchKind::IndirectJump);
    EXPECT_EQ(back[1].nextPc, 0x4000u);
}

TEST(TraceIo, CompactRoundTripSkipsTheMicroOpDetour)
{
    auto workload = makeWorkload("vortex", 5);
    const CompactTrace trace =
        CompactTrace::encode(drainTrace(*workload, 5000));
    const std::string path = "/tmp/tpred_test_trace_v2.tpr";
    saveTraceFile(path, trace, "vortex");

    std::string name;
    const CompactTrace back = loadCompactTraceFile(path, name);
    EXPECT_EQ(name, "vortex");
    ASSERT_EQ(back.size(), trace.size());

    // The v2 payload is the container image: re-serializing the
    // loaded trace must reproduce it byte for byte.
    EXPECT_EQ(serializeCompactTrace(back, name),
              serializeCompactTrace(trace, "vortex"));
    std::remove(path.c_str());
}

TEST(TraceIo, FileErrorsNameThePath)
{
    const std::string path = "/tmp/tpred_test_not_a_trace.tpr";
    std::ofstream(path, std::ios::binary)
        << "certainly not a trace file";
    std::string name;
    try {
        loadTraceFile(path, name);
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(path),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedV2FileErrorNamesThePath)
{
    const std::string path = "/tmp/tpred_test_truncated.tpr";
    {
        std::stringstream buffer;
        writeTrace(buffer, sampleOps(), "t");
        const std::string data = buffer.str();
        std::ofstream out(path, std::ios::binary);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size() - 9));
    }
    std::string name;
    try {
        loadTraceFile(path, name);
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(path),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace tpred
