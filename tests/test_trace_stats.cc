/** @file Unit tests for trace statistics and the target profiler. */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "trace/trace_source.hh"
#include "trace/trace_stats.hh"

namespace tpred
{
namespace
{

TEST(TraceCounts, ClassifiesInstructions)
{
    TraceCounts counts;
    counts.observe(test::plainOp(0x100));
    counts.observe(test::plainOp(0x104, InstClass::Load));
    counts.observe(test::plainOp(0x108, InstClass::Store));
    counts.observe(test::branchOp(0x10c, BranchKind::CondDirect, 0x200));
    counts.observe(test::branchOp(0x110, BranchKind::Call, 0x300));
    counts.observe(test::branchOp(0x114, BranchKind::Return, 0x120));
    counts.observe(test::indirectOp(0x118, 0x400));
    counts.observe(test::branchOp(0x11c, BranchKind::IndirectCall,
                                  0x500));

    EXPECT_EQ(counts.instructions, 8u);
    EXPECT_EQ(counts.branches, 5u);
    EXPECT_EQ(counts.condBranches, 1u);
    EXPECT_EQ(counts.indirectJumps, 2u);  // jump + indirect call
    EXPECT_EQ(counts.returns, 1u);
    EXPECT_EQ(counts.calls, 1u);
    EXPECT_EQ(counts.loads, 1u);
    EXPECT_EQ(counts.stores, 1u);
}

TEST(TargetProfiler, CountsDistinctTargetsPerSite)
{
    TargetProfiler profiler;
    profiler.observe(test::indirectOp(0x100, 0x200));
    profiler.observe(test::indirectOp(0x100, 0x300));
    profiler.observe(test::indirectOp(0x100, 0x200));
    profiler.observe(test::indirectOp(0x500, 0x600));

    EXPECT_EQ(profiler.staticSites(), 2u);
    EXPECT_EQ(profiler.dynamicJumps(), 4u);
    EXPECT_EQ(profiler.targetsOfSite(0x100), 2u);
    EXPECT_EQ(profiler.targetsOfSite(0x500), 1u);
    EXPECT_EQ(profiler.targetsOfSite(0x999), 0u);
}

TEST(TargetProfiler, IgnoresReturnsAndDirectBranches)
{
    TargetProfiler profiler;
    profiler.observe(test::branchOp(0x100, BranchKind::Return, 0x200));
    profiler.observe(test::branchOp(0x104, BranchKind::CondDirect,
                                    0x200));
    profiler.observe(test::plainOp(0x108));
    EXPECT_EQ(profiler.staticSites(), 0u);
    EXPECT_EQ(profiler.dynamicJumps(), 0u);
}

TEST(TargetProfiler, HistogramWeightedByDynamicCount)
{
    TargetProfiler profiler;
    // Site A: 2 targets, executed 3 times.
    profiler.observe(test::indirectOp(0x100, 0x200));
    profiler.observe(test::indirectOp(0x100, 0x300));
    profiler.observe(test::indirectOp(0x100, 0x200));
    // Site B: 1 target, executed once.
    profiler.observe(test::indirectOp(0x500, 0x600));

    Histogram hist = profiler.buildHistogram();
    EXPECT_EQ(hist.total(), 4u);
    EXPECT_EQ(hist.count(2), 3u);
    EXPECT_EQ(hist.count(1), 1u);
}

TEST(TargetProfiler, ManyTargetsLandInOverflowBucket)
{
    TargetProfiler profiler;
    for (uint64_t t = 0; t < 40; ++t)
        profiler.observe(test::indirectOp(0x100, 0x1000 + t * 4));
    Histogram hist = profiler.buildHistogram();
    EXPECT_EQ(hist.overflow(), 40u);
}

TEST(VectorTraceSource, ReplaysAndRewinds)
{
    std::vector<MicroOp> ops = {test::plainOp(0x100),
                                test::plainOp(0x104)};
    VectorTraceSource source(ops, "t");
    MicroOp op;
    EXPECT_TRUE(source.next(op));
    EXPECT_EQ(op.pc, 0x100u);
    EXPECT_TRUE(source.next(op));
    EXPECT_FALSE(source.next(op));
    source.rewind();
    EXPECT_TRUE(source.next(op));
    EXPECT_EQ(op.pc, 0x100u);
}

TEST(DrainTrace, RespectsMaxOps)
{
    std::vector<MicroOp> ops(100, test::plainOp(0x100));
    VectorTraceSource source(ops);
    auto drained = drainTrace(source, 30);
    EXPECT_EQ(drained.size(), 30u);
}

TEST(ProfileTrace, OnePassCollectsBoth)
{
    std::vector<MicroOp> ops = {
        test::plainOp(0x100),
        test::indirectOp(0x104, 0x200),
        test::indirectOp(0x104, 0x300),
    };
    VectorTraceSource source(ops);
    TraceProfile profile = profileTrace(source, 1000);
    EXPECT_EQ(profile.counts.instructions, 3u);
    EXPECT_EQ(profile.counts.indirectJumps, 2u);
    EXPECT_EQ(profile.targets.targetsOfSite(0x104), 2u);
}

} // namespace
} // namespace tpred
