/**
 * @file
 * Autotuner suite: Pareto-frontier properties (no dominated survivor,
 * permutation invariance, exact rational rate comparison), config
 * space enumeration (size floors, unique ids, deterministic capped
 * subsampling, fail-loud unknown names), the successive-halving
 * engine's determinism contract (byte-identical results run-to-run
 * and serial vs parallel), the exhaustive-vs-halving differential on
 * the tiny space, and the tune.* deterministic-counter contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/parallel_runner.hh"
#include "obs/metrics.hh"
#include "tune/config_space.hh"
#include "tune/pareto.hh"
#include "tune/successive_halving.hh"
#include "tune/tune_report.hh"

namespace tpred::tune
{
namespace
{

ParetoPoint
point(uint64_t bits, uint64_t misses, uint64_t total,
      const std::string &id)
{
    ParetoPoint p;
    p.storageBits = bits;
    p.misses = misses;
    p.total = total;
    p.id = id;
    return p;
}

TEST(CompareMissRate, ExactRationalOrdering)
{
    EXPECT_LT(compareMissRate(1, 3, 1, 2), 0);
    EXPECT_GT(compareMissRate(1, 2, 1, 3), 0);
    EXPECT_EQ(compareMissRate(2, 4, 1, 2), 0);
    // A double can't tell these apart; the rational must.
    EXPECT_LT(compareMissRate(333'333'333'333ULL, 1'000'000'000'000ULL,
                              1, 3),
              0);
    // Zero totals compare as rate zero.
    EXPECT_EQ(compareMissRate(0, 0, 0, 100), 0);
    EXPECT_LT(compareMissRate(0, 0, 1, 100), 0);
}

TEST(ParetoFrontier, NoDominatedPointSurvives)
{
    std::vector<ParetoPoint> points = {
        point(100, 50, 100, "a"),  point(100, 40, 100, "b"),
        point(200, 40, 100, "c"),  point(200, 30, 100, "d"),
        point(400, 30, 100, "e"),  point(400, 10, 100, "f"),
        point(800, 20, 100, "g"),  // dominated by f
        point(50, 60, 100, "h"),
    };
    const std::vector<ParetoPoint> frontier = paretoFrontier(points);
    for (const ParetoPoint &p : frontier)
        for (const ParetoPoint &q : points)
            EXPECT_FALSE(dominates(q, p))
                << q.id << " dominates surviving " << p.id;
    // h (cheapest), b, d, f — c and g dominated, a beaten by b.
    ASSERT_EQ(frontier.size(), 4u);
    EXPECT_EQ(frontier[0].id, "h");
    EXPECT_EQ(frontier[1].id, "b");
    EXPECT_EQ(frontier[2].id, "d");
    EXPECT_EQ(frontier[3].id, "f");
    // Sorted ascending in storage, strictly descending in rate.
    for (size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_LT(frontier[i - 1].storageBits, frontier[i].storageBits);
        EXPECT_GT(compareMissRate(frontier[i - 1].misses,
                                  frontier[i - 1].total,
                                  frontier[i].misses,
                                  frontier[i].total),
                  0);
    }
}

TEST(ParetoFrontier, InvariantUnderPermutation)
{
    std::vector<ParetoPoint> points;
    for (uint64_t i = 0; i < 40; ++i)
        points.push_back(point(64 << (i % 5), (i * 7919) % 100, 100,
                               "p" + std::to_string(i)));
    const std::vector<ParetoPoint> want = paretoFrontier(points);
    std::mt19937 rng(42);
    for (int round = 0; round < 10; ++round) {
        std::shuffle(points.begin(), points.end(), rng);
        const std::vector<ParetoPoint> got = paretoFrontier(points);
        ASSERT_EQ(got.size(), want.size()) << "round " << round;
        for (size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(got[i].id, want[i].id) << "round " << round;
    }
}

TEST(ParetoFrontier, EqualPointsKeepSmallestId)
{
    const std::vector<ParetoPoint> frontier = paretoFrontier(
        {point(100, 10, 100, "zeta"), point(100, 10, 100, "alpha")});
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(frontier[0].id, "alpha");
}

TEST(ConfigSpace, PresetsEnumerateDeterministically)
{
    for (const std::string &name : spaceNames()) {
        EXPECT_TRUE(isSpaceName(name));
        const ConfigSpace a = enumerateSpace(name);
        const ConfigSpace b = enumerateSpace(name);
        ASSERT_EQ(a.candidates.size(), b.candidates.size()) << name;
        for (size_t i = 0; i < a.candidates.size(); ++i) {
            EXPECT_EQ(a.candidates[i].id, b.candidates[i].id) << name;
            EXPECT_EQ(a.candidates[i].storageBits,
                      b.candidates[i].storageBits)
                << name;
        }
        // Unique ids and consistent hashes.
        std::vector<std::string> ids;
        for (const TuneCandidate &c : a.candidates) {
            ids.push_back(c.id);
            EXPECT_EQ(c.hash, candidateHash(c.id));
            EXPECT_GT(c.storageBits, 0u) << c.id;
        }
        std::sort(ids.begin(), ids.end());
        EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end())
            << name << " has duplicate candidate ids";
    }
    EXPECT_FALSE(isSpaceName("nonsense"));
    EXPECT_THROW(enumerateSpace("nonsense"), std::invalid_argument);
}

TEST(ConfigSpace, StandardSpaceSpansAThousandConfigs)
{
    const ConfigSpace space = enumerateSpace("standard");
    EXPECT_GE(space.candidates.size(), 1000u);
    EXPECT_EQ(space.truncated(), 0u);
}

TEST(ConfigSpace, CapTruncatesDeterministically)
{
    const ConfigSpace full = enumerateSpace("standard");
    const ConfigSpace a = enumerateSpace("standard", 100);
    const ConfigSpace b = enumerateSpace("standard", 100);
    ASSERT_EQ(a.candidates.size(), 100u);
    EXPECT_EQ(a.enumerated, full.candidates.size());
    EXPECT_EQ(a.truncated(), full.candidates.size() - 100);
    for (size_t i = 0; i < a.candidates.size(); ++i)
        EXPECT_EQ(a.candidates[i].id, b.candidates[i].id);
    // The survivors are a subset of the full space, in its order.
    size_t cursor = 0;
    for (const TuneCandidate &c : a.candidates) {
        while (cursor < full.candidates.size() &&
               full.candidates[cursor].id != c.id)
            ++cursor;
        ASSERT_LT(cursor, full.candidates.size())
            << c.id << " not found in enumeration order";
        ++cursor;
    }
}

TEST(RungSchedule, GeometricWithClampsAndExactFinalRung)
{
    TuneOptions opt;
    opt.fullOps = 2'000'000;
    opt.rungs = 4;
    opt.eta = 4;
    const std::vector<size_t> want = {31'250, 125'000, 500'000,
                                      2'000'000};
    EXPECT_EQ(rungSchedule(opt), want);

    opt.rungs = 1;
    EXPECT_EQ(rungSchedule(opt), std::vector<size_t>{2'000'000});

    // Deep schedules clamp at minRungOps instead of hitting zero.
    opt.rungs = 12;
    opt.minRungOps = 2000;
    const std::vector<size_t> deep = rungSchedule(opt);
    ASSERT_EQ(deep.size(), 12u);
    EXPECT_EQ(deep.front(), 2000u);
    EXPECT_EQ(deep.back(), 2'000'000u);
    for (size_t i = 1; i < deep.size(); ++i)
        EXPECT_LE(deep[i - 1], deep[i]);
}

TEST(SuccessiveHalving, RejectsDegenerateOptions)
{
    const ConfigSpace space = enumerateSpace("tiny");
    TuneOptions opt;
    opt.fullOps = 20'000;

    TuneOptions bad = opt;
    bad.rungs = 0;
    EXPECT_THROW(runSuccessiveHalving(space, bad),
                 std::invalid_argument);
    bad = opt;
    bad.eta = 1;
    EXPECT_THROW(runSuccessiveHalving(space, bad),
                 std::invalid_argument);
    bad = opt;
    bad.fullOps = 0;
    EXPECT_THROW(runSuccessiveHalving(space, bad),
                 std::invalid_argument);
    bad = opt;
    bad.workloads = {"not-a-workload"};
    EXPECT_THROW(runSuccessiveHalving(space, bad),
                 std::invalid_argument);
}

void
expectSameResult(const TuneResult &want, const TuneResult &got)
{
    EXPECT_EQ(want.workloads, got.workloads);
    EXPECT_EQ(want.schedule, got.schedule);
    EXPECT_EQ(want.evals, got.evals);
    EXPECT_EQ(want.fullEvals, got.fullEvals);
    ASSERT_EQ(want.finalists.size(), got.finalists.size());
    for (size_t i = 0; i < want.finalists.size(); ++i) {
        EXPECT_EQ(want.finalists[i].candidate,
                  got.finalists[i].candidate);
        EXPECT_EQ(want.finalists[i].aggMisses,
                  got.finalists[i].aggMisses);
        EXPECT_EQ(want.finalists[i].aggTotal,
                  got.finalists[i].aggTotal);
    }
    ASSERT_EQ(want.aggregateFrontier.size(),
              got.aggregateFrontier.size());
    for (size_t i = 0; i < want.aggregateFrontier.size(); ++i) {
        EXPECT_EQ(want.aggregateFrontier[i].id,
                  got.aggregateFrontier[i].id);
        EXPECT_EQ(want.aggregateFrontier[i].misses,
                  got.aggregateFrontier[i].misses);
    }
}

TEST(SuccessiveHalving, DeterministicRunToRun)
{
    const ConfigSpace space = enumerateSpace("tiny");
    TuneOptions opt;
    opt.fullOps = 20'000;
    opt.rungs = 3;
    const TuneResult a = runSuccessiveHalving(space, opt);
    const TuneResult b = runSuccessiveHalving(space, opt);
    expectSameResult(a, b);
    // Down to the serialized report (the byte-identity the json-label
    // CLI tests assert end to end, minus the volatile runtime block).
    const auto deterministicPart = [&](const TuneResult &r) {
        return renderRungTable(r) +
               renderFrontierTable(r.aggregateFrontier);
    };
    EXPECT_EQ(deterministicPart(a), deterministicPart(b));
}

TEST(SuccessiveHalving, SerialAndParallelAgree)
{
    const ConfigSpace space = enumerateSpace("tiny");
    TuneOptions opt;
    opt.fullOps = 20'000;
    opt.rungs = 3;
    setDefaultJobs(1);
    const TuneResult serial = runSuccessiveHalving(space, opt);
    setDefaultJobs(3);
    const TuneResult parallel = runSuccessiveHalving(space, opt);
    setDefaultJobs(0);
    expectSameResult(serial, parallel);
}

TEST(SuccessiveHalving, HalvingFrontierMatchesExhaustive)
{
    // The differential the bench's self-check repeats at full scale:
    // on a space cheap enough to brute-force, every halving frontier
    // point must sit on the exhaustive frontier with identical
    // full-budget numbers, and the exhaustive winner must survive to
    // the halving finale.
    const ConfigSpace space = enumerateSpace("tiny");
    TuneOptions opt;
    opt.fullOps = 40'000;
    opt.rungs = 3;
    const TuneResult halving = runSuccessiveHalving(space, opt);
    const TuneResult exhaustive = runExhaustive(space, opt);

    EXPECT_EQ(exhaustive.fullEvals, exhaustive.exhaustiveEvals);
    EXPECT_LT(halving.fullEvals, exhaustive.fullEvals);
    ASSERT_FALSE(halving.aggregateFrontier.empty());

    for (const ParetoPoint &p : halving.aggregateFrontier) {
        EXPECT_TRUE(onFrontier(exhaustive.aggregateFrontier, p))
            << p.id << " not on the exhaustive frontier";
        for (const ParetoPoint &q : exhaustive.aggregateFrontier) {
            if (q.id != p.id)
                continue;
            // Same full-budget evaluation, bit for bit.
            EXPECT_EQ(q.misses, p.misses) << p.id;
            EXPECT_EQ(q.total, p.total) << p.id;
        }
    }

    // The exhaustive winner (lowest aggregate rate, canonical
    // tie-break) is the halving frontier's most accurate point.
    const ParetoPoint &want = exhaustive.aggregateFrontier.back();
    const ParetoPoint &got = halving.aggregateFrontier.back();
    EXPECT_EQ(got.id, want.id);
    EXPECT_EQ(got.misses, want.misses);
    EXPECT_EQ(got.total, want.total);
}

TEST(SuccessiveHalving, CountersFollowTheTrajectory)
{
    const auto counter = [](const obs::MetricsSnapshot &snap,
                            const char *name) -> uint64_t {
        const auto it = snap.counters.find(name);
        return it == snap.counters.end() ? 0 : it->second;
    };
    const ConfigSpace space = enumerateSpace("tiny");
    TuneOptions opt;
    opt.fullOps = 20'000;
    opt.rungs = 3;

    const obs::MetricsSnapshot before = obs::globalMetrics().snapshot();
    const TuneResult result = runSuccessiveHalving(space, opt);
    const obs::MetricsSnapshot after = obs::globalMetrics().snapshot();

    EXPECT_EQ(counter(after, "tune.rungs") - counter(before, "tune.rungs"),
              result.rungs.size());
    EXPECT_EQ(counter(after, "tune.evals") - counter(before, "tune.evals"),
              result.evals);
    EXPECT_EQ(counter(after, "tune.full_evals") -
                  counter(before, "tune.full_evals"),
              result.fullEvals);
    EXPECT_EQ(counter(after, "tune.frontier_size") -
                  counter(before, "tune.frontier_size"),
              result.aggregateFrontier.size());
    uint64_t promoted = 0;
    for (const RungRecord &r : result.rungs)
        promoted += r.promoted;
    EXPECT_EQ(counter(after, "tune.promotions") -
                  counter(before, "tune.promotions"),
              promoted);
}

TEST(TuneReport, CarriesTheContractSections)
{
    const ConfigSpace space = enumerateSpace("tiny");
    TuneOptions opt;
    opt.fullOps = 20'000;
    opt.rungs = 2;
    const TuneResult result = runSuccessiveHalving(space, opt);
    obs::RunReport report =
        makeTuneReport("test_tune", space, opt, result);
    report.captureProcess();
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"schema\": \"tpred-tune-report/1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"space\": \"tiny\""), std::string::npos);
    EXPECT_NE(json.find("\"tune.evals\""), std::string::npos);
    EXPECT_NE(json.find("\"frontier_aggregate\""), std::string::npos);
    EXPECT_NE(json.find("\"rungs\""), std::string::npos);
}

} // namespace
} // namespace tpred::tune
