/** @file Shared helpers for building MicroOps in unit tests. */

#ifndef TPRED_TESTS_TEST_UTIL_HH
#define TPRED_TESTS_TEST_UTIL_HH

#include "trace/micro_op.hh"

namespace tpred::test
{

/** A plain non-branch op at @p pc. */
inline MicroOp
plainOp(uint64_t pc, InstClass cls = InstClass::Integer)
{
    MicroOp op;
    op.pc = pc;
    op.fallthrough = pc + 4;
    op.nextPc = pc + 4;
    op.cls = cls;
    return op;
}

/** A resolved branch of @p kind at @p pc. */
inline MicroOp
branchOp(uint64_t pc, BranchKind kind, uint64_t target, bool taken = true)
{
    MicroOp op;
    op.pc = pc;
    op.fallthrough = pc + 4;
    op.cls = InstClass::Branch;
    op.branch = kind;
    op.taken = taken;
    op.nextPc = taken ? target : op.fallthrough;
    return op;
}

/** An indirect jump at @p pc to @p target. */
inline MicroOp
indirectOp(uint64_t pc, uint64_t target, uint64_t selector = 0)
{
    MicroOp op = branchOp(pc, BranchKind::IndirectJump, target);
    op.selector = selector;
    return op;
}

} // namespace tpred::test

#endif // TPRED_TESTS_TEST_UTIL_HH
