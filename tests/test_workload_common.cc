/**
 * @file
 * Property tests every synthetic workload must satisfy: determinism,
 * trace well-formedness, static-code consistency, call/return balance,
 * and the per-benchmark control-flow profiles DESIGN.md promises.
 */

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "trace/trace_stats.hh"
#include "workloads/workload.hh"

namespace tpred
{
namespace
{

constexpr size_t kOps = 60000;

std::vector<MicroOp>
record(const std::string &name, uint64_t seed = 1, size_t ops = kOps)
{
    auto workload = makeWorkload(name, seed);
    return drainTrace(*workload, ops);
}

class WorkloadProperties : public ::testing::TestWithParam<std::string>
{
  protected:
    void SetUp() override { trace_ = record(GetParam()); }
    std::vector<MicroOp> trace_;
};

TEST_P(WorkloadProperties, ProducesRequestedLength)
{
    EXPECT_EQ(trace_.size(), kOps);
}

TEST_P(WorkloadProperties, DeterministicForSameSeed)
{
    auto again = record(GetParam());
    ASSERT_EQ(again.size(), trace_.size());
    for (size_t i = 0; i < trace_.size(); i += 997) {
        EXPECT_EQ(again[i].pc, trace_[i].pc) << "at " << i;
        EXPECT_EQ(again[i].nextPc, trace_[i].nextPc) << "at " << i;
        EXPECT_EQ(again[i].branch, trace_[i].branch) << "at " << i;
    }
}

TEST_P(WorkloadProperties, DifferentSeedsDiverge)
{
    auto other = record(GetParam(), 999, 20000);
    size_t same = 0;
    for (size_t i = 0; i < other.size(); ++i)
        same += other[i].pc == trace_[i].pc;
    // Static layout is shared, but the dynamic path must differ.
    EXPECT_LT(same, other.size());
}

TEST_P(WorkloadProperties, OpsAreWellFormed)
{
    for (const MicroOp &op : trace_) {
        EXPECT_EQ(op.pc % 4, 0u);
        EXPECT_EQ(op.fallthrough, op.pc + 4);
        if (!op.isBranch()) {
            EXPECT_EQ(op.nextPc, op.fallthrough);
            EXPECT_NE(op.cls, InstClass::Branch);
        } else {
            EXPECT_EQ(op.cls, InstClass::Branch);
            if (op.branch == BranchKind::CondDirect && !op.taken) {
                EXPECT_EQ(op.nextPc, op.fallthrough);
            }
            if (op.branch != BranchKind::CondDirect) {
                EXPECT_TRUE(op.taken);
            }
        }
        // Code and data segments are disjoint.
        EXPECT_LT(op.pc, Workload::kDataBase);
        EXPECT_NE(op.nextPc, 0u);
    }
}

TEST_P(WorkloadProperties, StaticCodeIsConsistent)
{
    // At a fixed pc: the branch kind never changes, and direct
    // branches always have the same taken-target.
    std::map<uint64_t, BranchKind> kind_at;
    std::map<uint64_t, uint64_t> direct_target_at;
    for (const MicroOp &op : trace_) {
        if (!op.isBranch())
            continue;
        auto [it, fresh] = kind_at.try_emplace(op.pc, op.branch);
        if (!fresh) {
            ASSERT_EQ(it->second, op.branch)
                << "branch kind changed at 0x" << std::hex << op.pc;
        }
        const bool direct = op.branch == BranchKind::CondDirect ||
                            op.branch == BranchKind::UncondDirect ||
                            op.branch == BranchKind::Call;
        if (direct && op.taken) {
            auto [t, tfresh] =
                direct_target_at.try_emplace(op.pc, op.nextPc);
            if (!tfresh) {
                ASSERT_EQ(t->second, op.nextPc)
                    << "direct target changed at 0x" << std::hex
                    << op.pc;
            }
        }
    }
}

TEST_P(WorkloadProperties, CallsAndReturnsBalance)
{
    // Simulate a perfect return stack: every return must go back to
    // the fall-through of the matching call.
    std::vector<uint64_t> stack;
    for (const MicroOp &op : trace_) {
        if (op.branch == BranchKind::Call ||
            op.branch == BranchKind::IndirectCall) {
            stack.push_back(op.fallthrough);
        } else if (op.branch == BranchKind::Return) {
            ASSERT_FALSE(stack.empty());
            ASSERT_EQ(op.nextPc, stack.back());
            stack.pop_back();
        }
    }
    EXPECT_LT(stack.size(), 64u);  // bounded nesting
}

TEST_P(WorkloadProperties, RealisticInstructionMix)
{
    TraceCounts counts;
    for (const MicroOp &op : trace_)
        counts.observe(op);
    const double branch_frac =
        double(counts.branches) / double(counts.instructions);
    EXPECT_GT(branch_frac, 0.10);
    EXPECT_LT(branch_frac, 0.55);
    EXPECT_GT(counts.indirectJumps, 0u);
    EXPECT_GT(counts.loads, 0u);
    EXPECT_GT(counts.stores, 0u);
}

TEST_P(WorkloadProperties, IndirectJumpsHaveSelectors)
{
    // The CBT needs the dispatch selector; at least the dominant
    // indirect sites must provide varying selectors.
    std::map<uint64_t, std::set<uint64_t>> selectors;
    for (const MicroOp &op : trace_) {
        if (isIndirectNonReturn(op.branch))
            selectors[op.pc].insert(op.selector);
    }
    size_t max_selectors = 0;
    for (const auto &[pc, sels] : selectors)
        max_selectors = std::max(max_selectors, sels.size());
    EXPECT_GE(max_selectors, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadProperties,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ---- Per-benchmark profile properties (DESIGN.md / paper Figs 1-8) --

TEST(WorkloadProfiles, PerlEvalSiteHasThirtyPlusTargets)
{
    auto trace = record("perl", 1, 120000);
    TargetProfiler profiler;
    for (const auto &op : trace)
        profiler.observe(op);
    // Few static sites, at least one with >= 30 targets (Figure 6).
    EXPECT_LE(profiler.staticSites(), 6u);
    Histogram hist = profiler.buildHistogram();
    EXPECT_GT(hist.overflowFraction(), 0.3);
}

TEST(WorkloadProfiles, GccHasManySitesWithSpreadTargetCounts)
{
    auto trace = record("gcc", 1, 120000);
    TargetProfiler profiler;
    for (const auto &op : trace)
        profiler.observe(op);
    EXPECT_GE(profiler.staticSites(), 10u);  // Figure 2's spread
}

TEST(WorkloadProfiles, CompressIndirectJumpsAreRareAndFewTargets)
{
    auto trace = record("compress", 1, 120000);
    TraceCounts counts;
    TargetProfiler profiler;
    for (const auto &op : trace) {
        counts.observe(op);
        profiler.observe(op);
    }
    EXPECT_LT(double(counts.indirectJumps) / counts.instructions, 0.02);
    Histogram hist = profiler.buildHistogram();
    EXPECT_EQ(hist.overflow(), 0u);  // no >=30-target sites (Fig 1)
}

TEST(WorkloadProfiles, IjpegNearlyMonomorphic)
{
    auto trace = record("ijpeg", 1, 120000);
    TargetProfiler profiler;
    for (const auto &op : trace)
        profiler.observe(op);
    Histogram hist = profiler.buildHistogram();
    // Dominant mass at <= 3 targets per site (Figure 4).
    EXPECT_GT(hist.fraction(1) + hist.fraction(2) + hist.fraction(3),
              0.95);
}

TEST(WorkloadProfiles, VortexDispatchMostlyRepeats)
{
    auto trace = record("vortex", 1, 120000);
    uint64_t changes = 0, total = 0;
    std::map<uint64_t, uint64_t> last;
    for (const auto &op : trace) {
        if (!isIndirectNonReturn(op.branch))
            continue;
        auto it = last.find(op.pc);
        if (it != last.end()) {
            ++total;
            changes += it->second != op.nextPc;
        }
        last[op.pc] = op.nextPc;
    }
    ASSERT_GT(total, 100u);
    // Low target-change rate = low BTB misprediction (Table 1).
    EXPECT_LT(double(changes) / total, 0.3);
}

TEST(WorkloadProfiles, PerlDispatchRarelyRepeats)
{
    auto trace = record("perl", 1, 120000);
    uint64_t changes = 0, total = 0;
    std::map<uint64_t, uint64_t> last;
    for (const auto &op : trace) {
        if (!isIndirectNonReturn(op.branch))
            continue;
        auto it = last.find(op.pc);
        if (it != last.end()) {
            ++total;
            changes += it->second != op.nextPc;
        }
        last[op.pc] = op.nextPc;
    }
    ASSERT_GT(total, 100u);
    EXPECT_GT(double(changes) / total, 0.6);
}

TEST(WorkloadFactory, UnknownNameThrows)
{
    EXPECT_THROW(makeWorkload("nonesuch"), std::invalid_argument);
}

TEST(WorkloadFactory, NamesListedAreConstructible)
{
    EXPECT_EQ(spec95Names().size(), 8u);
    EXPECT_EQ(allWorkloadNames().size(), 11u);
    for (const auto &name : allWorkloadNames()) {
        auto workload = makeWorkload(name);
        EXPECT_EQ(workload->name(), name);
    }
}

TEST(WorkloadFactory, RegistryIsOrderedAndDescribed)
{
    const auto &registry = workloadRegistry();
    ASSERT_EQ(registry.size(), allWorkloadNames().size());
    for (size_t i = 1; i < registry.size(); ++i) {
        const auto &a = registry[i - 1];
        const auto &b = registry[i];
        EXPECT_TRUE(a.rank < b.rank ||
                    (a.rank == b.rank && a.name < b.name))
            << a.name << " vs " << b.name;
    }
    for (const auto &info : registry) {
        EXPECT_FALSE(info.description.empty()) << info.name;
        EXPECT_NE(info.factory, nullptr) << info.name;
        EXPECT_EQ(info.spec95, info.rank == 0) << info.name;
        EXPECT_TRUE(isKnownWorkload(info.name));
    }
    EXPECT_FALSE(isKnownWorkload("nonesuch"));
    // The paper's Table 1 order is the spec95 group, alphabetical.
    EXPECT_EQ(registry.front().name, "compress");
}

TEST(WorkloadFactory, ServerWorkloadsRegistered)
{
    EXPECT_TRUE(isKnownWorkload("server-dispatch"));
    EXPECT_TRUE(isKnownWorkload("server-jit"));
}

} // namespace
} // namespace tpred
