/**
 * @file
 * Per-workload structural tests: each generator's *specific* promises
 * from docs/workloads.md, beyond the common invariants of
 * test_workload_common.cc.
 */

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "trace/trace_stats.hh"
#include "workloads/workload.hh"

namespace tpred
{
namespace
{

std::vector<MicroOp>
record(const std::string &name, size_t ops, uint64_t seed = 1)
{
    auto workload = makeWorkload(name, seed);
    return drainTrace(*workload, ops);
}

/**
 * Windowed periodicity: split @p seq into windows, find the best
 * single-lag self-match fraction per window, return the mean.
 */
double
windowedPeriodicity(const std::vector<uint64_t> &seq, size_t window,
                    size_t max_lag)
{
    double sum = 0.0;
    size_t windows = 0;
    for (size_t start = 0; start + window <= seq.size();
         start += window) {
        double best = 0.0;
        for (size_t lag = 4; lag <= max_lag && lag * 2 < window;
             ++lag) {
            size_t m = 0;
            for (size_t i = start + lag; i < start + window; ++i)
                m += seq[i] == seq[i - lag];
            best = std::max(best, static_cast<double>(m) /
                                      (window - lag));
        }
        sum += best;
        ++windows;
    }
    return windows ? sum / windows : 0.0;
}

/** Collect per-site target sets. */
std::map<uint64_t, std::set<uint64_t>>
siteTargets(const std::vector<MicroOp> &trace)
{
    std::map<uint64_t, std::set<uint64_t>> sites;
    for (const auto &op : trace)
        if (isIndirectNonReturn(op.branch))
            sites[op.pc].insert(op.nextPc);
    return sites;
}

// ---- perl ----------------------------------------------------------

TEST(PerlWorkload, EvalDispatchCoversTheFullAlphabet)
{
    auto sites = siteTargets(record("perl", 200000));
    size_t max_targets = 0;
    for (const auto &[pc, targets] : sites)
        max_targets = std::max(max_targets, targets.size());
    EXPECT_GE(max_targets, 30u);  // Figure 6's ">=30" profile
}

TEST(PerlWorkload, TokenStreamIsPeriodicWithinALine)
{
    // Extract the eval-site target sequence; within one line pass the
    // same subsequence must recur many times (16 iterations/line).
    auto trace = record("perl", 300000);
    auto sites = siteTargets(trace);
    // The eval site is the one with the most targets.
    uint64_t eval_pc = 0;
    size_t best = 0;
    for (const auto &[pc, targets] : sites) {
        if (targets.size() > best) {
            best = targets.size();
            eval_pc = pc;
        }
    }
    std::vector<uint64_t> seq;
    for (const auto &op : trace)
        if (op.pc == eval_pc)
            seq.push_back(op.nextPc);
    ASSERT_GT(seq.size(), 1000u);

    // Lines differ in length, so periodicity is windowed: within a
    // window (inside one line's 16-iteration run) some lag must match
    // strongly; average the per-window best.
    EXPECT_GT(windowedPeriodicity(seq, 150, 60), 0.55);
}

// ---- gcc -----------------------------------------------------------

TEST(GccWorkload, PassesCreateManyDistinctSites)
{
    auto sites = siteTargets(record("gcc", 300000));
    EXPECT_GE(sites.size(), 10u);
    // Target-count spread: at least one small and one large site.
    size_t smallest = SIZE_MAX, largest = 0;
    for (const auto &[pc, targets] : sites) {
        smallest = std::min(smallest, targets.size());
        largest = std::max(largest, targets.size());
    }
    EXPECT_LE(smallest, 8u);
    EXPECT_GE(largest, 30u);
}

TEST(GccWorkload, PassIterationRepeatsTheDispatchSequence)
{
    // Within a pass, the fixpoint iterations replay the same node
    // sequence: for each site, consecutive visits should show exact
    // k-step periodicity a good fraction of the time.
    auto trace = record("gcc", 200000);
    std::map<uint64_t, std::vector<uint64_t>> seqs;
    for (const auto &op : trace)
        if (op.branch == BranchKind::IndirectJump)
            seqs[op.pc].push_back(op.nextPc);
    // Pick the busiest site.
    const std::vector<uint64_t> *seq = nullptr;
    for (const auto &[pc, s] : seqs)
        if (!seq || s.size() > seq->size())
            seq = &s;
    ASSERT_NE(seq, nullptr);
    // Iteration length varies by function, so measure windowed
    // periodicity (each window sits inside one function's fixpoint
    // iterations).
    EXPECT_GT(windowedPeriodicity(*seq, 160, 80), 0.4);
}

// ---- m88ksim -------------------------------------------------------

TEST(M88ksimWorkload, HotLoopDominatesTheDecodeStream)
{
    auto trace = record("m88ksim", 200000);
    std::map<uint64_t, uint64_t> target_counts;
    uint64_t total = 0;
    for (const auto &op : trace) {
        if (op.branch != BranchKind::IndirectJump)
            continue;
        ++target_counts[op.nextPc];
        ++total;
    }
    // The hot inner loop's handlers (kAdd/kSub run) dominate.
    uint64_t top2 = 0;
    std::vector<uint64_t> counts;
    for (const auto &[t, c] : target_counts)
        counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    if (counts.size() >= 2)
        top2 = counts[0] + counts[1];
    EXPECT_GT(static_cast<double>(top2) / total, 0.35);
}

// ---- vortex --------------------------------------------------------

TEST(VortexWorkload, ContainerPhasesAreSticky)
{
    auto trace = record("vortex", 200000);
    // Consecutive method-dispatch targets at the same site repeat
    // most of the time (sticky container + dominant class).
    std::map<uint64_t, uint64_t> last;
    uint64_t repeats = 0, total = 0;
    for (const auto &op : trace) {
        if (op.branch != BranchKind::IndirectCall)
            continue;
        auto it = last.find(op.pc);
        if (it != last.end()) {
            ++total;
            repeats += it->second == op.nextPc;
        }
        last[op.pc] = op.nextPc;
    }
    ASSERT_GT(total, 1000u);
    EXPECT_GT(static_cast<double>(repeats) / total, 0.7);
}

// ---- xlisp ---------------------------------------------------------

TEST(XlispWorkload, RecursionReachesRealDepth)
{
    auto trace = record("xlisp", 100000);
    size_t depth = 0, max_depth = 0;
    for (const auto &op : trace) {
        if (op.branch == BranchKind::Call ||
            op.branch == BranchKind::IndirectCall)
            max_depth = std::max(max_depth, ++depth);
        else if (op.branch == BranchKind::Return && depth > 0)
            --depth;
    }
    EXPECT_GE(max_depth, 4u);
    EXPECT_LE(max_depth, 16u);  // within the RAS depth
}

TEST(XlispWorkload, GcPhaseContainsNoIndirectJumps)
{
    // GC is conditional/ALU work: overall indirect density drops when
    // GC runs, but more simply, the trace has long indirect-free gaps.
    auto trace = record("xlisp", 100000);
    size_t gap = 0, max_gap = 0;
    for (const auto &op : trace) {
        if (isIndirectNonReturn(op.branch)) {
            max_gap = std::max(max_gap, gap);
            gap = 0;
        } else {
            ++gap;
        }
    }
    EXPECT_GE(max_gap, 100u);
}

// ---- compress / ijpeg ----------------------------------------------

TEST(CompressWorkload, OutputPathsArePeriodic)
{
    auto trace = record("compress", 300000);
    // Find the 3-target output site and check its majority target
    // dominates (fast path most of the time).
    auto sites = siteTargets(trace);
    std::map<uint64_t, std::map<uint64_t, uint64_t>> counts;
    for (const auto &op : trace)
        if (isIndirectNonReturn(op.branch))
            ++counts[op.pc][op.nextPc];
    bool found = false;
    for (const auto &[pc, targets] : sites) {
        if (targets.size() == 3) {
            found = true;
            uint64_t total = 0, best = 0;
            for (const auto &[t, c] : counts[pc]) {
                total += c;
                best = std::max(best, c);
            }
            EXPECT_GT(static_cast<double>(best) / total, 0.7);
        }
    }
    EXPECT_TRUE(found);
}

TEST(IjpegWorkload, ComponentConstantWithinScanRows)
{
    auto trace = record("ijpeg", 300000);
    auto sites = siteTargets(trace);
    // The 3-target component site changes target rarely.
    for (const auto &op0 : trace) {
        (void)op0;
        break;
    }
    std::map<uint64_t, uint64_t> last;
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> change_of;
    for (const auto &op : trace) {
        if (op.branch != BranchKind::IndirectJump)
            continue;
        auto it = last.find(op.pc);
        if (it != last.end()) {
            auto &[changes, total] = change_of[op.pc];
            ++total;
            changes += it->second != op.nextPc;
        }
        last[op.pc] = op.nextPc;
    }
    for (const auto &[pc, targets] : sites) {
        if (targets.size() == 3) {
            const auto &[changes, total] = change_of[pc];
            ASSERT_GT(total, 100u);
            EXPECT_LT(static_cast<double>(changes) / total, 0.05);
        }
    }
}

// ---- go ------------------------------------------------------------

TEST(GoWorkload, JosekiSequencesRepeatAcrossTheRun)
{
    // The same 3-gram of move targets must recur many times (replayed
    // joseki lines), even though the stream has noise.
    auto trace = record("go", 200000);
    std::vector<uint64_t> seq;
    for (const auto &op : trace)
        if (op.branch == BranchKind::IndirectJump)
            seq.push_back(op.nextPc);
    std::map<std::tuple<uint64_t, uint64_t, uint64_t>, int> trigrams;
    for (size_t i = 2; i < seq.size(); ++i)
        ++trigrams[{seq[i - 2], seq[i - 1], seq[i]}];
    int max_count = 0;
    for (const auto &[key, count] : trigrams)
        max_count = std::max(max_count, count);
    EXPECT_GT(max_count, 50);
}

// ---- cpp-virtual ---------------------------------------------------

TEST(CppVirtualWorkload, MixedPolymorphismDegrees)
{
    auto sites = siteTargets(record("cpp-virtual", 200000));
    size_t mono = 0, mega = 0;
    for (const auto &[pc, targets] : sites) {
        if (targets.size() <= 2)
            ++mono;
        if (targets.size() >= 8)
            ++mega;
    }
    EXPECT_GE(mono, 2u);
    EXPECT_GE(mega, 2u);
}

} // namespace
} // namespace tpred
