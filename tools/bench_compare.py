#!/usr/bin/env python3
"""Compare two bench JSON reports and flag throughput regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]

Accepts the output of any bench that emits an `ops` budget and a
per-workload map of *_mops lanes — both the current tpred-run-report/1
documents (ops under "config", see tools/report_lint.py) and the older
flat {"ops": N, "workloads": {...}} files, so an old committed baseline
can be compared against a fresh candidate:

    bench/replay_throughput -> BENCH_replay.json
        (legacy/compact/indexed replay Mops/s)
    bench/sweep_throughput  -> BENCH_sweep.json
        (sequential vs fused multi-config sweep Mops/s; a fused-lane
        drop beyond the threshold fails the sweep perf gate)
    bench/corpus_load       -> BENCH_corpus.json
        (regen/cold/warm trace-acquisition Mops/s; a warm-load drop
        beyond the threshold fails the corpus perf gate)
    bench/shard_replay      -> BENCH_shard.json
        (resident/streaming/sharded segmented-replay Mops/s; the
        resident lane is 0 — and exempt — when the run exceeds the
        residency cap, and a streaming- or sharded-lane drop beyond
        the threshold fails the segmented perf gate)

For every workload present in both files, every *_mops lane in the
candidate is compared against the baseline; a drop of more than
--threshold percent (default 10) is a regression.  Workloads or lanes
missing from the candidate are also regressions — a bench that
silently stopped covering a workload must not pass.  Compare like
with like: a replay baseline against a replay candidate, a sweep
baseline against a sweep candidate, a corpus baseline against a
corpus candidate.

Exit status: 0 when clean, 1 on any regression, 2 on unusable input.
Only the standard library is used so the script runs anywhere.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    workloads = data.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        sys.exit(f"bench_compare: {path} has no 'workloads' map")
    return data


def ops_of(data):
    """Instruction budget: top-level (legacy) or config.ops (report)."""
    if "ops" in data:
        return data["ops"]
    return data.get("config", {}).get("ops")


def lanes(entry):
    """The throughput lanes of one workload entry, name -> Mops/s."""
    return {
        key: value
        for key, value in entry.items()
        if key.endswith("_mops") and isinstance(value, (int, float))
    }


def main():
    parser = argparse.ArgumentParser(
        description="Diff two replay_throughput JSON reports.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold", type=float, default=10.0, metavar="PCT",
        help="regression tolerance in percent (default: %(default)s)")
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    if ops_of(base) != ops_of(cand):
        print(f"note: op budgets differ (baseline {ops_of(base)}, "
              f"candidate {ops_of(cand)}); Mops/s still comparable")

    regressions = []
    rows = []
    for name, base_entry in sorted(base["workloads"].items()):
        cand_entry = cand["workloads"].get(name)
        if cand_entry is None:
            regressions.append(f"{name}: missing from candidate")
            continue
        for lane, base_mops in sorted(lanes(base_entry).items()):
            cand_mops = lanes(cand_entry).get(lane)
            if cand_mops is None:
                regressions.append(f"{name}/{lane}: missing lane")
                continue
            if base_mops <= 0:
                continue  # nothing meaningful to compare against
            delta = 100.0 * (cand_mops - base_mops) / base_mops
            flag = ""
            if delta < -args.threshold:
                flag = "  REGRESSION"
                regressions.append(
                    f"{name}/{lane}: {base_mops:.1f} -> "
                    f"{cand_mops:.1f} Mops/s ({delta:+.1f}%)")
            rows.append((name, lane, base_mops, cand_mops, delta, flag))

    width = max((len(f"{n}/{l}") for n, l, *_ in rows), default=10)
    print(f"{'workload/lane':<{width}}  {'baseline':>9}  "
          f"{'candidate':>9}  {'delta':>8}")
    for name, lane, base_mops, cand_mops, delta, flag in rows:
        print(f"{name + '/' + lane:<{width}}  {base_mops:>9.1f}  "
              f"{cand_mops:>9.1f}  {delta:>+7.1f}%{flag}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nno lane regressed more than {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
