#!/usr/bin/env python3
"""Compare two bench JSON reports and flag throughput regressions.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]
    bench_compare.py --check-baselines [DIR]

Accepts the output of any bench that emits an `ops` budget and a
per-workload map of *_mops lanes — both the current tpred-run-report/1
documents (ops under "config", see tools/report_lint.py) and the older
flat {"ops": N, "workloads": {...}} files, so an old committed baseline
can be compared against a fresh candidate:

    bench/replay_throughput -> BENCH_replay.json
        (legacy/compact/indexed replay Mops/s)
    bench/sweep_throughput  -> BENCH_sweep.json
        (sequential vs fused multi-config sweep Mops/s; a fused-lane
        drop beyond the threshold fails the sweep perf gate)
    bench/corpus_load       -> BENCH_corpus.json
        (regen/cold/warm trace-acquisition Mops/s; a warm-load drop
        beyond the threshold fails the corpus perf gate)
    bench/shard_replay      -> BENCH_shard.json
        (resident/streaming/sharded segmented-replay Mops/s; the
        resident lane is 0 — and exempt — when the run exceeds the
        residency cap, and a streaming- or sharded-lane drop beyond
        the threshold fails the segmented perf gate)

For every workload present in both files, every *_mops lane in the
candidate is compared against the baseline; a drop of more than
--threshold percent (default 10) is a regression.  Workloads or lanes
missing from the candidate are also regressions — a bench that
silently stopped covering a workload must not pass.  Compare like
with like: a replay baseline against a replay candidate, a sweep
baseline against a sweep candidate, a corpus baseline against a
corpus candidate.

The REGISTERED_BASELINES registry lists every baseline file the repo
commits; `--check-baselines [DIR]` fails loudly (exit 1, one line per
absentee) when any registered file is missing or unreadable, so a
bench whose baseline silently never landed — or was deleted — cannot
pass the perf gate by having nothing to compare against.

Exit status: 0 when clean, 1 on any regression or missing registered
baseline, 2 on unusable input.  Only the standard library is used so
the script runs anywhere.
"""

import argparse
import json
import os
import sys

#: Baseline reports committed at the repo root; every bench that emits
#: one must keep its file in this registry (and vice versa).
REGISTERED_BASELINES = {
    "BENCH_replay.json": "bench/replay_throughput",
    "BENCH_sweep.json": "bench/sweep_throughput",
    "BENCH_corpus.json": "bench/corpus_load",
    "BENCH_shard.json": "bench/shard_replay",
    "BENCH_tune.json": "bench/tune_search",
    "BENCH_btb.json": "bench/btb_pressure",
    "BENCH_stream.json": "bench/stream_pipeline",
}


def check_baselines(root):
    """Verifies every registered baseline exists and parses."""
    missing = []
    for name, tool in sorted(REGISTERED_BASELINES.items()):
        path = os.path.join(root, name)
        try:
            with open(path, "r", encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            missing.append(f"{name} (regenerate with {tool}): {err}")
            continue
        if not isinstance(data.get("workloads"), dict):
            missing.append(
                f"{name} (regenerate with {tool}): no 'workloads' map")
    if missing:
        print(f"{len(missing)} registered baseline(s) missing or "
              f"unusable in {root}:", file=sys.stderr)
        for line in missing:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"all {len(REGISTERED_BASELINES)} registered baselines "
          f"present in {root}")
    return 0


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    workloads = data.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        sys.exit(f"bench_compare: {path} has no 'workloads' map")
    return data


def ops_of(data):
    """Instruction budget: top-level (legacy) or config.ops (report)."""
    if "ops" in data:
        return data["ops"]
    return data.get("config", {}).get("ops")


def lanes(entry):
    """The throughput lanes of one workload entry, name -> Mops/s."""
    return {
        key: value
        for key, value in entry.items()
        if key.endswith("_mops") and isinstance(value, (int, float))
    }


def main():
    parser = argparse.ArgumentParser(
        description="Diff two bench JSON reports.")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("candidate", nargs="?")
    parser.add_argument(
        "--threshold", type=float, default=10.0, metavar="PCT",
        help="regression tolerance in percent (default: %(default)s)")
    parser.add_argument(
        "--check-baselines", nargs="?", const=".", metavar="DIR",
        help="verify every registered baseline file exists under DIR "
             "(default: current directory) and exit")
    args = parser.parse_args()

    if args.check_baselines is not None:
        return check_baselines(args.check_baselines)
    if args.baseline is None or args.candidate is None:
        parser.error("baseline and candidate are required unless "
                     "--check-baselines is given")

    base = load(args.baseline)
    cand = load(args.candidate)
    if ops_of(base) != ops_of(cand):
        print(f"note: op budgets differ (baseline {ops_of(base)}, "
              f"candidate {ops_of(cand)}); Mops/s still comparable")

    regressions = []
    rows = []
    for name, base_entry in sorted(base["workloads"].items()):
        cand_entry = cand["workloads"].get(name)
        if cand_entry is None:
            regressions.append(f"{name}: missing from candidate")
            continue
        for lane, base_mops in sorted(lanes(base_entry).items()):
            cand_mops = lanes(cand_entry).get(lane)
            if cand_mops is None:
                regressions.append(f"{name}/{lane}: missing lane")
                continue
            if base_mops <= 0:
                continue  # nothing meaningful to compare against
            delta = 100.0 * (cand_mops - base_mops) / base_mops
            flag = ""
            if delta < -args.threshold:
                flag = "  REGRESSION"
                regressions.append(
                    f"{name}/{lane}: {base_mops:.1f} -> "
                    f"{cand_mops:.1f} Mops/s ({delta:+.1f}%)")
            rows.append((name, lane, base_mops, cand_mops, delta, flag))

    width = max((len(f"{n}/{l}") for n, l, *_ in rows), default=10)
    print(f"{'workload/lane':<{width}}  {'baseline':>9}  "
          f"{'candidate':>9}  {'delta':>8}")
    for name, lane, base_mops, cand_mops, delta, flag in rows:
        print(f"{name + '/' + lane:<{width}}  {base_mops:>9.1f}  "
              f"{cand_mops:>9.1f}  {delta:>+7.1f}%{flag}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nno lane regressed more than {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
