#!/usr/bin/env python3
"""Validate, mask, and compare tpred report JSON documents.

Two schemas share the same six-section shape and are both accepted:
tpred-run-report/1 (every tool and bench) and tpred-tune-report/1 (the
tpredtune autotuner, which must additionally carry the deterministic
tune.* counters and a config.space entry naming the searched space).

Usage:
  report_lint.py REPORT...            validate schema, exit 1 on errors
  report_lint.py --mask REPORT        validate, zero the volatile fields,
                                      print canonical JSON on stdout
  report_lint.py --compare A B        validate both, diff everything but
                                      the volatile fields, exit 1 on any
                                      difference

The determinism contract (docs/observability.md): two runs of the same
tool with the same semantic config agree on every field outside the
"runtime" section and outside keys matching the volatile patterns
below.  Metric names are not constrained: deterministic counters such
as the fused sweep kernel's "sweep.*" family (sweep.batches,
sweep.configs, sweep.history_groups, sweep.branches,
sweep.streams_built) and the BTB hierarchy's "btb.*" family
(btb.l1_hits, btb.l1_misses, btb.l2_hits, btb.prefetches,
btb.victims — credited once per counted run, see docs/btb_hierarchy.md)
are compared exactly like any other counter — identical serial vs
--jobs N.  --mask canonicalizes a report so `cmp` can assert byte-identical
output; --compare diffs two reports under the same rules (e.g. a serial
run against a --jobs N run).
"""

import argparse
import json
import sys

SCHEMA = "tpred-run-report/1"
TUNE_SCHEMA = "tpred-tune-report/1"
SCHEMAS = (SCHEMA, TUNE_SCHEMA)
# Counters a tune report must carry (successive_halving.cc emits them).
TUNE_METRICS = ("tune.rungs", "tune.evals", "tune.promotions",
                "tune.full_evals", "tune.frontier_size")
SECTIONS = ["schema", "tool", "config", "metrics", "tables",
            "workloads", "runtime"]
RUNTIME_SECTIONS = ["counters", "gauges", "timers", "info", "resources"]

# Keys whose values are timing- or environment-dependent wherever they
# appear (the entire "runtime" section is volatile as a whole).
VOLATILE_SUFFIXES = ("_ns", "_mops", "_seconds", "_speedup")
VOLATILE_KEYS = {"speedup"}


def is_volatile_key(key):
    return key in VOLATILE_KEYS or key.endswith(VOLATILE_SUFFIXES)


def fail(path, message):
    print(f"report_lint: {path}: {message}", file=sys.stderr)
    return False


def validate(path, doc):
    ok = True
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    for key in SECTIONS:
        if key not in doc:
            ok = fail(path, f"missing section '{key}'")
    for key in doc:
        if key not in SECTIONS:
            ok = fail(path, f"unknown section '{key}'")
    if doc.get("schema") not in SCHEMAS:
        ok = fail(path, f"schema is {doc.get('schema')!r}, "
                        f"want one of {SCHEMAS!r}")
    if not isinstance(doc.get("tool"), str) or not doc.get("tool"):
        ok = fail(path, "'tool' must be a non-empty string")
    for section in ("config", "metrics", "tables", "workloads", "runtime"):
        if not isinstance(doc.get(section), dict):
            ok = fail(path, f"'{section}' must be an object")
    if not ok:
        return False
    for name, value in doc["metrics"].items():
        if not isinstance(value, int) or value < 0:
            ok = fail(path, f"metrics.{name} must be a non-negative int")
    for name, value in doc["tables"].items():
        if not isinstance(value, str):
            ok = fail(path, f"tables.{name} must be a string")
    for workload, lanes in doc["workloads"].items():
        if not isinstance(lanes, dict):
            ok = fail(path, f"workloads.{workload} must be an object")
            continue
        for lane, value in lanes.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                ok = fail(path,
                          f"workloads.{workload}.{lane} must be a number")
    runtime = doc["runtime"]
    for key in RUNTIME_SECTIONS:
        if key not in runtime:
            ok = fail(path, f"missing runtime.{key}")
    for key in runtime:
        if key not in RUNTIME_SECTIONS:
            ok = fail(path, f"unknown runtime section '{key}'")
    if not ok:
        return False
    for name, value in runtime["timers"].items():
        if (not isinstance(value, dict) or
                sorted(value) != ["count", "cpu_ns", "wall_ns"]):
            ok = fail(path, f"runtime.timers.{name} must be "
                            "{count, wall_ns, cpu_ns}")
    if doc["schema"] == TUNE_SCHEMA:
        for name in TUNE_METRICS:
            if name not in doc["metrics"]:
                ok = fail(path, f"tune report missing metric '{name}'")
        space = doc["config"].get("space")
        if not isinstance(space, str) or not space:
            ok = fail(path, "tune report config.space must be a "
                            "non-empty string")
    return ok


def masked(doc):
    """Copy of doc with every volatile field zeroed."""

    def scrub(value):
        if isinstance(value, dict):
            return {k: (0 if is_volatile_key(k) else scrub(v))
                    for k, v in value.items()}
        return value

    out = {k: scrub(v) for k, v in doc.items() if k != "runtime"}
    out["runtime"] = {key: {} for key in RUNTIME_SECTIONS}
    return out


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"report_lint: {path}: {e}", file=sys.stderr)
        return None


def main():
    parser = argparse.ArgumentParser(
        description="tpred-run-report/1 schema checker")
    parser.add_argument("--mask", action="store_true",
                        help="print the report with volatile fields "
                             "zeroed (canonical JSON)")
    parser.add_argument("--compare", action="store_true",
                        help="diff two reports ignoring volatile fields")
    parser.add_argument("reports", nargs="+", metavar="REPORT")
    args = parser.parse_args()

    docs = []
    for path in args.reports:
        doc = load(path)
        if doc is None or not validate(path, doc):
            return 1
        docs.append(doc)

    if args.compare:
        if len(docs) != 2:
            print("report_lint: --compare needs exactly two reports",
                  file=sys.stderr)
            return 2
        a, b = masked(docs[0]), masked(docs[1])
        if a != b:
            for section in SECTIONS:
                if a.get(section) != b.get(section):
                    print(f"report_lint: section '{section}' differs "
                          f"between {args.reports[0]} and "
                          f"{args.reports[1]}", file=sys.stderr)
            return 1
        print(f"{args.reports[0]} == {args.reports[1]} "
              "(volatile fields ignored)")
        return 0

    if args.mask:
        for doc in docs:
            print(json.dumps(masked(doc), indent=2, sort_keys=True))
        return 0

    for path in args.reports:
        print(f"{path}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
