/**
 * @file
 * tpredcorpus — manages a persistent on-disk trace corpus.
 *
 *   tpredcorpus build  --dir corpus [--ops N] [--seed N] [WORKLOAD...]
 *   tpredcorpus ls     --dir corpus
 *   tpredcorpus verify --dir corpus
 *   tpredcorpus gc     --dir corpus [--max-bytes N]
 *
 * `build` records the named workloads (default: every workload) and
 * stores each as a checksummed CompactTrace container; existing
 * up-to-date entries are kept.  `verify` re-reads every container
 * with full CRC checking and exits non-zero if any fail.  `ls`
 * prints a table from the headers only, including each file's
 * artifact kind (plain / segmented / branch-stream) and on-disk
 * bytes.  `gc` deletes quarantined, temporary and corrupt files,
 * evicts oldest-first down to --max-bytes if given, and collects
 * branch-stream containers orphaned by their parent trace's removal.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <filesystem>

#include "common/stats.hh"
#include "corpus/corpus.hh"
#include "corpus/segmented_trace.hh"
#include "harness/experiment.hh"
#include "harness/run_options.hh"
#include "obs/run_report.hh"
#include "workloads/workload.hh"

using namespace tpred;

namespace
{

/** Tool-specific options; --ops (and the rest of the shared
 *  vocabulary) is consumed by RunOptions before parse() runs. */
struct Options
{
    std::string command;
    std::string dir;
    std::vector<std::string> workloads;
    size_t ops = kDefaultAccuracyOps;
    uint64_t seed = 1;
    uint64_t maxBytes = 0;
    size_t segmentOps = 0;  ///< >0 = build segmented containers
};

[[noreturn]] void
usage()
{
    std::fputs(
        "tpredcorpus — persistent trace corpus manager\n"
        "\n"
        "  tpredcorpus build  --dir DIR [--ops N] [--seed N] "
        "[--segment-ops N] [WORKLOAD...]\n"
        "  tpredcorpus ls     --dir DIR\n"
        "  tpredcorpus verify --dir DIR\n"
        "  tpredcorpus gc     --dir DIR [--max-bytes N]\n"
        "\n"
        "build records the listed workloads (default: all) into DIR;\n"
        "entries that already verify are kept.  With --segment-ops N\n"
        "each trace is written as a segmented container (N ops per\n"
        "segment), streamed from the generator at O(N) memory.\n"
        "verify exits 1 if any container fails its checksums and\n"
        "prints per-segment detail for segmented entries.\n",
        stderr);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Options opt;
    opt.command = argv[1];
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dir")
            opt.dir = need(i);
        else if (arg == "--seed")
            opt.seed = static_cast<uint64_t>(std::atoll(need(i)));
        else if (arg == "--max-bytes")
            opt.maxBytes =
                static_cast<uint64_t>(std::atoll(need(i)));
        else if (arg == "--segment-ops")
            opt.segmentOps = parseOps(need(i), "--segment-ops");
        else if (arg.starts_with("--"))
            usage();
        else
            opt.workloads.push_back(arg);
    }
    if (opt.dir.empty())
        usage();
    return opt;
}

int
cmdBuild(CorpusManager &corpus, const Options &opt)
{
    const std::vector<std::string> &names =
        opt.workloads.empty() ? allWorkloadNames() : opt.workloads;
    if (opt.segmentOps > 0) {
        // Segmented build streams straight from the generator: one
        // segment of ops is resident at a time, so --ops can exceed
        // memory by orders of magnitude.
        for (const std::string &name : names) {
            const CorpusKey key{name, opt.seed, opt.ops};
            if (auto existing =
                    corpus.loadSegmented(key, opt.segmentOps)) {
                std::printf(
                    "%-12s up to date (%llu ops, %zu segments)\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        existing->totalOps()),
                    existing->segmentCount());
                continue;
            }
            auto workload = makeWorkload(name, opt.seed);
            corpus.storeSegmentedFromSource(key, *workload,
                                            workload->name(),
                                            opt.segmentOps);
            const auto stored =
                corpus.loadSegmented(key, opt.segmentOps);
            std::printf(
                "%-12s recorded %s ops -> %s (%zu segments)\n",
                name.c_str(), formatCount(opt.ops).c_str(),
                corpus.segmentedFileName(key, opt.segmentOps).c_str(),
                stored ? stored->segmentCount() : 0);
        }
        return 0;
    }
    for (const std::string &name : names) {
        const CorpusKey key{name, opt.seed, opt.ops};
        if (auto existing = corpus.load(key)) {
            std::printf("%-12s up to date (%zu ops)\n", name.c_str(),
                        existing->size());
            continue;
        }
        const SharedTrace trace = recordWorkload(name, opt.ops,
                                                 opt.seed);
        corpus.store(key, trace.compact(), trace.name());
        std::printf("%-12s recorded %s ops -> %s\n", name.c_str(),
                    formatCount(trace.size()).c_str(),
                    corpus.fileName(key).c_str());
    }
    return 0;
}

int
cmdList(const CorpusManager &corpus, bool verify)
{
    const std::vector<CorpusEntry> entries = corpus.list(verify);
    if (entries.empty()) {
        std::printf("corpus %s is empty\n", corpus.dir().c_str());
        return 0;
    }
    int bad = 0;
    std::printf("%-44s %-13s %10s %10s %12s  %s\n", "file", "kind",
                "ops", "branches", "bytes",
                verify ? "verified" : "status");
    for (const CorpusEntry &e : entries) {
        if (e.ok) {
            std::printf("%-44s %-13s %10llu %10llu %12llu  ok\n",
                        e.file.c_str(), corpusArtifactName(e.kind),
                        static_cast<unsigned long long>(e.opCount),
                        static_cast<unsigned long long>(e.branchCount),
                        static_cast<unsigned long long>(e.fileBytes));
            if (verify && e.segmentCount > 0) {
                // Per-segment detail: the envelope was just verified
                // by list(), so this re-walk only reads the index.
                const auto trace = SegmentedTrace::open(
                    (std::filesystem::path(corpus.dir()) / e.file)
                        .string());
                for (size_t s = 0; s < trace->segmentCount(); ++s) {
                    const SegmentRecord &rec = trace->record(s);
                    std::printf(
                        "  segment %-4zu ops [%llu, %llu) %10llu "
                        "branches %12llu bytes  crc32c %08x  ok\n",
                        s,
                        static_cast<unsigned long long>(rec.firstOp),
                        static_cast<unsigned long long>(rec.firstOp +
                                                        rec.opCount),
                        static_cast<unsigned long long>(
                            rec.branchCount),
                        static_cast<unsigned long long>(rec.byteLen),
                        rec.crc);
                }
            }
        } else {
            ++bad;
            std::printf("%-44s %-13s %10s %10s %12s  BAD: %s\n",
                        e.file.c_str(), corpusArtifactName(e.kind),
                        "-", "-", "-", e.error.c_str());
        }
    }
    if (bad > 0)
        std::fprintf(stderr, "tpredcorpus: %d corrupt file(s)\n", bad);
    return bad > 0 ? 1 : 0;
}

int
cmdGc(CorpusManager &corpus, const Options &opt)
{
    const size_t removed = corpus.gc(opt.maxBytes);
    std::printf("removed %zu file(s)\n", removed);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // argv[1] is a subcommand, so no positional instruction count.
    const RunOptions run = RunOptions::fromEnvAndArgv(
        argc, argv, kDefaultAccuracyOps, /*positional_ops=*/false);
    try {
        Options opt = parse(argc, argv);
        opt.ops = run.ops;
        setVerboseLogging(run.verbose);
        CorpusManager corpus(opt.dir, &obs::globalMetrics());
        int rc = 2;
        if (opt.command == "build")
            rc = cmdBuild(corpus, opt);
        else if (opt.command == "ls")
            rc = cmdList(corpus, false);
        else if (opt.command == "verify")
            rc = cmdList(corpus, true);
        else if (opt.command == "gc")
            rc = cmdGc(corpus, opt);
        else
            usage();
        if (!run.reportPath.empty()) {
            obs::RunReport report("tpredcorpus");
            report.setConfig("command", opt.command);
            report.setConfig("dir", opt.dir);
            report.setConfig("ops", static_cast<uint64_t>(opt.ops));
            report.captureProcess();
            report.write(run.reportPath);
        }
        return rc;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tpredcorpus: %s\n", e.what());
        return 1;
    }
}
