/**
 * @file
 * tpredcorpus — manages a persistent on-disk trace corpus.
 *
 *   tpredcorpus build  --dir corpus [--ops N] [--seed N] [WORKLOAD...]
 *   tpredcorpus ls     --dir corpus
 *   tpredcorpus verify --dir corpus
 *   tpredcorpus gc     --dir corpus [--max-bytes N]
 *
 * `build` records the named workloads (default: every workload) and
 * stores each as a checksummed CompactTrace container; existing
 * up-to-date entries are kept.  `verify` re-reads every container
 * with full CRC checking and exits non-zero if any fail.  `ls`
 * prints a table from the headers only.  `gc` deletes quarantined,
 * temporary and corrupt files, then evicts oldest-first down to
 * --max-bytes if given.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "corpus/corpus.hh"
#include "harness/experiment.hh"
#include "harness/run_options.hh"
#include "obs/run_report.hh"
#include "workloads/workload.hh"

using namespace tpred;

namespace
{

/** Tool-specific options; --ops (and the rest of the shared
 *  vocabulary) is consumed by RunOptions before parse() runs. */
struct Options
{
    std::string command;
    std::string dir;
    std::vector<std::string> workloads;
    size_t ops = kDefaultAccuracyOps;
    uint64_t seed = 1;
    uint64_t maxBytes = 0;
};

[[noreturn]] void
usage()
{
    std::fputs(
        "tpredcorpus — persistent trace corpus manager\n"
        "\n"
        "  tpredcorpus build  --dir DIR [--ops N] [--seed N] "
        "[WORKLOAD...]\n"
        "  tpredcorpus ls     --dir DIR\n"
        "  tpredcorpus verify --dir DIR\n"
        "  tpredcorpus gc     --dir DIR [--max-bytes N]\n"
        "\n"
        "build records the listed workloads (default: all) into DIR;\n"
        "entries that already verify are kept.  verify exits 1 if any\n"
        "container fails its checksums.\n",
        stderr);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    if (argc < 2)
        usage();
    Options opt;
    opt.command = argv[1];
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dir")
            opt.dir = need(i);
        else if (arg == "--seed")
            opt.seed = static_cast<uint64_t>(std::atoll(need(i)));
        else if (arg == "--max-bytes")
            opt.maxBytes =
                static_cast<uint64_t>(std::atoll(need(i)));
        else if (arg.starts_with("--"))
            usage();
        else
            opt.workloads.push_back(arg);
    }
    if (opt.dir.empty())
        usage();
    return opt;
}

int
cmdBuild(CorpusManager &corpus, const Options &opt)
{
    const std::vector<std::string> &names =
        opt.workloads.empty() ? allWorkloadNames() : opt.workloads;
    for (const std::string &name : names) {
        const CorpusKey key{name, opt.seed, opt.ops};
        if (auto existing = corpus.load(key)) {
            std::printf("%-12s up to date (%zu ops)\n", name.c_str(),
                        existing->size());
            continue;
        }
        const SharedTrace trace = recordWorkload(name, opt.ops,
                                                 opt.seed);
        corpus.store(key, trace.compact(), trace.name());
        std::printf("%-12s recorded %s ops -> %s\n", name.c_str(),
                    formatCount(trace.size()).c_str(),
                    corpus.fileName(key).c_str());
    }
    return 0;
}

int
cmdList(const CorpusManager &corpus, bool verify)
{
    const std::vector<CorpusEntry> entries = corpus.list(verify);
    if (entries.empty()) {
        std::printf("corpus %s is empty\n", corpus.dir().c_str());
        return 0;
    }
    int bad = 0;
    std::printf("%-44s %10s %10s %12s  %s\n", "file", "ops",
                "branches", "bytes", verify ? "verified" : "status");
    for (const CorpusEntry &e : entries) {
        if (e.ok) {
            std::printf("%-44s %10llu %10llu %12llu  ok\n",
                        e.file.c_str(),
                        static_cast<unsigned long long>(e.opCount),
                        static_cast<unsigned long long>(e.branchCount),
                        static_cast<unsigned long long>(e.fileBytes));
        } else {
            ++bad;
            std::printf("%-44s %10s %10s %12s  BAD: %s\n",
                        e.file.c_str(), "-", "-", "-",
                        e.error.c_str());
        }
    }
    if (bad > 0)
        std::fprintf(stderr, "tpredcorpus: %d corrupt file(s)\n", bad);
    return bad > 0 ? 1 : 0;
}

int
cmdGc(CorpusManager &corpus, const Options &opt)
{
    const size_t removed = corpus.gc(opt.maxBytes);
    std::printf("removed %zu file(s)\n", removed);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // argv[1] is a subcommand, so no positional instruction count.
    const RunOptions run = RunOptions::fromEnvAndArgv(
        argc, argv, kDefaultAccuracyOps, /*positional_ops=*/false);
    try {
        Options opt = parse(argc, argv);
        opt.ops = run.ops;
        setVerboseLogging(run.verbose);
        CorpusManager corpus(opt.dir, &obs::globalMetrics());
        int rc = 2;
        if (opt.command == "build")
            rc = cmdBuild(corpus, opt);
        else if (opt.command == "ls")
            rc = cmdList(corpus, false);
        else if (opt.command == "verify")
            rc = cmdList(corpus, true);
        else if (opt.command == "gc")
            rc = cmdGc(corpus, opt);
        else
            usage();
        if (!run.reportPath.empty()) {
            obs::RunReport report("tpredcorpus");
            report.setConfig("command", opt.command);
            report.setConfig("dir", opt.dir);
            report.setConfig("ops", static_cast<uint64_t>(opt.ops));
            report.captureProcess();
            report.write(run.reportPath);
        }
        return rc;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tpredcorpus: %s\n", e.what());
        return 1;
    }
}
