/**
 * @file
 * tpredsim — command-line driver for the target-cache library.
 *
 * Runs any workload through any predictor configuration, in accuracy
 * or timing mode, and can save/load binary traces.
 *
 *   tpredsim --workload perl --predictor tagged --ways 8 --hist 16
 *   tpredsim --workload gcc --predictor tagless --history path-indjmp
 *   tpredsim --workload perl --timing --ops 2000000
 *   tpredsim --workload perl --save-trace perl.tpr
 *   tpredsim --load-trace perl.tpr --predictor ittage --sites 10
 *   tpredsim --workload gcc --timing --report run.json
 */

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/stats.hh"
#include "corpus/corpus.hh"
#include "harness/paper_tables.hh"
#include "harness/shard_replay.hh"
#include "harness/parallel_runner.hh"
#include "harness/run_options.hh"
#include "harness/site_report.hh"
#include "harness/trace_cache.hh"
#include "obs/run_report.hh"
#include "trace/trace_io.hh"
#include "tune/config_space.hh"
#include "tune/successive_halving.hh"
#include "tune/tune_report.hh"
#include "workloads/workload.hh"

using namespace tpred;

namespace
{

/** Tool-specific options; the shared vocabulary (--ops, --jobs,
 *  --corpus, --report, --verbose) is consumed by RunOptions first. */
struct Options
{
    std::string workload = "perl";
    std::string predictor = "tagless";
    std::string history = "pattern";
    std::string scheme = "xor";
    std::string saveTrace;
    std::string loadTrace;
    std::string loadSegmented;
    std::string tuneSpace;
    unsigned shards = 0;
    unsigned ways = 4;
    unsigned histBits = 9;
    unsigned bitsPerTarget = 1;
    uint64_t seed = 1;
    size_t sites = 0;
    bool timing = false;
    bool twoBitBtb = false;
    bool listWorkloads = false;
};

[[noreturn]] void
usage()
{
    std::puts(
        "tpredsim — indirect-jump target prediction simulator\n"
        "\n"
        "  --workload NAME     a registered workload      [perl]\n"
        "  --list-workloads    list registered workloads and exit\n"
        "  --ops N             instructions to simulate   [1000000]\n"
        "  --seed N            workload seed              [1]\n"
        "  --predictor KIND    btb|tagless|tagged|cascaded|ittage|\n"
        "                      oracle                     [tagless]\n"
        "  --history KIND      pattern|path-control|path-branch|\n"
        "                      path-callret|path-indjmp|path-peraddr\n"
        "                                                 [pattern]\n"
        "  --hist N            history bits               [9]\n"
        "  --bits-per-target N path bits per target       [1]\n"
        "  --scheme S          tagged index: addr|concat|xor  [xor]\n"
        "  --ways N            tagged associativity       [4]\n"
        "  --two-bit-btb       Calder/Grunwald BTB update strategy\n"
        "  --timing            run the OoO timing model too\n"
        "  --jobs N            worker threads for parallel runs\n"
        "                      [hardware concurrency]\n"
        "  --sites N           print the top-N misbehaving sites\n"
        "  --save-trace FILE   record the workload to a trace file\n"
        "  --load-trace FILE   replay a recorded trace file\n"
        "  --load-segmented F  stream a segmented (.tpcs) container,\n"
        "                      one mapped segment resident at a time\n"
        "  --shards N          shard the segmented replay into N\n"
        "                      regions with checkpoint proofs\n"
        "  --tune SPACE        hand off to the tpredtune autotuner\n"
        "                      (smoke|tiny|bench|standard|btb)\n"
        "  --corpus DIR        persistent trace corpus directory\n"
        "                      (also honoured as $TPRED_CORPUS_DIR)\n"
        "  --report FILE       write a tpred-run-report/1 JSON file\n"
        "                      (also honoured as $TPRED_REPORT)\n"
        "  --verbose           log cache/corpus traffic to stderr\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--workload")
            opt.workload = need(i);
        else if (arg == "--seed")
            opt.seed = static_cast<uint64_t>(std::atoll(need(i)));
        else if (arg == "--predictor")
            opt.predictor = need(i);
        else if (arg == "--history")
            opt.history = need(i);
        else if (arg == "--hist")
            opt.histBits = static_cast<unsigned>(std::atoi(need(i)));
        else if (arg == "--bits-per-target")
            opt.bitsPerTarget =
                static_cast<unsigned>(std::atoi(need(i)));
        else if (arg == "--scheme")
            opt.scheme = need(i);
        else if (arg == "--ways")
            opt.ways = static_cast<unsigned>(std::atoi(need(i)));
        else if (arg == "--two-bit-btb")
            opt.twoBitBtb = true;
        else if (arg == "--timing")
            opt.timing = true;
        else if (arg == "--sites")
            opt.sites = static_cast<size_t>(std::atoll(need(i)));
        else if (arg == "--save-trace")
            opt.saveTrace = need(i);
        else if (arg == "--load-trace")
            opt.loadTrace = need(i);
        else if (arg == "--load-segmented")
            opt.loadSegmented = need(i);
        else if (arg == "--shards")
            opt.shards = static_cast<unsigned>(std::atoi(need(i)));
        else if (arg == "--tune")
            opt.tuneSpace = need(i);
        else if (arg == "--list-workloads")
            opt.listWorkloads = true;
        else
            usage();
    }
    return opt;
}

/** Prints the workload registry, one line per generator. */
void
listWorkloads()
{
    for (const WorkloadInfo &info : workloadRegistry())
        std::printf("%-16s %s\n", info.name.c_str(),
                    info.description.c_str());
}

HistorySpec
historyFor(const Options &opt)
{
    if (opt.history == "pattern")
        return patternHistory(opt.histBits);
    if (opt.history == "path-control")
        return pathGlobal(PathFilter::Control, opt.histBits,
                          opt.bitsPerTarget);
    if (opt.history == "path-branch")
        return pathGlobal(PathFilter::Branch, opt.histBits,
                          opt.bitsPerTarget);
    if (opt.history == "path-callret")
        return pathGlobal(PathFilter::CallRet, opt.histBits,
                          opt.bitsPerTarget);
    if (opt.history == "path-indjmp")
        return pathGlobal(PathFilter::IndJmp, opt.histBits,
                          opt.bitsPerTarget);
    if (opt.history == "path-peraddr")
        return pathPerAddress(opt.histBits, opt.bitsPerTarget);
    throw std::invalid_argument("unknown history: " + opt.history);
}

TaggedIndexScheme
schemeFor(const Options &opt)
{
    if (opt.scheme == "addr")
        return TaggedIndexScheme::Address;
    if (opt.scheme == "concat")
        return TaggedIndexScheme::HistoryConcat;
    if (opt.scheme == "xor")
        return TaggedIndexScheme::HistoryXor;
    throw std::invalid_argument("unknown scheme: " + opt.scheme);
}

IndirectConfig
configFor(const Options &opt)
{
    if (opt.predictor == "btb")
        return baselineConfig();
    if (opt.predictor == "tagless")
        return taglessGshare(historyFor(opt));
    if (opt.predictor == "tagged")
        return taggedConfig(schemeFor(opt), opt.ways, historyFor(opt));
    if (opt.predictor == "cascaded")
        return cascadedConfig(128, opt.ways);
    if (opt.predictor == "ittage")
        return ittageConfig();
    if (opt.predictor == "oracle")
        return oracleConfig();
    throw std::invalid_argument("unknown predictor: " + opt.predictor);
}

void
printAccuracy(const FrontendStats &stats)
{
    std::printf("indirect jumps : %s, miss rate %s\n",
                formatCount(stats.indirectJumps.total()).c_str(),
                formatPercent(stats.indirectJumps.missRate(), 2)
                    .c_str());
    std::printf("cond direction : miss rate %s\n",
                formatPercent(stats.condDirection.missRate(), 2)
                    .c_str());
    std::printf("returns        : miss rate %s\n",
                formatPercent(stats.returns.missRate(), 2).c_str());
    std::printf("all branches   : %.2f MPKI\n", stats.mpki());
}

void
printProofs(const std::vector<ShardProof> &shards, bool verified)
{
    for (size_t k = 0; k < shards.size(); ++k) {
        const ShardProof &p = shards[k];
        std::printf("shard %zu: [%llu, %llu) warm-up %llu  entry %s  "
                    "exit %s%s%s\n",
                    k, static_cast<unsigned long long>(p.beginOp),
                    static_cast<unsigned long long>(p.endOp),
                    static_cast<unsigned long long>(p.warmupOps),
                    p.entryMatched ? "ok" : "MISMATCH",
                    p.exitMatched ? "ok" : "MISMATCH",
                    p.error.empty() ? "" : "  error: ",
                    p.error.c_str());
    }
    std::printf("checkpoint proof: %s\n",
                verified ? "verified (bit-identical to serial replay)"
                         : "FAILED");
}

/** The --load-segmented path: streaming or sharded replay of a
 *  segmented container, never materializing the full trace. */
int
runSegmented(const Options &opt, const RunOptions &run)
{
    const auto trace = SegmentedTrace::open(opt.loadSegmented);
    std::printf("trace: %s, %s instructions, %zu segments\n",
                trace->name().c_str(),
                formatCount(trace->totalOps()).c_str(),
                trace->segmentCount());

    const IndirectConfig config = configFor(opt);
    FrontendConfig fe;
    if (opt.twoBitBtb)
        fe = twoBitBtbFrontend();
    std::printf("predictor: %s\n\n", config.describe().c_str());

    obs::RunReport report("tpredsim");
    report.setConfig("trace", opt.loadSegmented);
    report.setConfig("predictor", config.describe());
    report.setConfig("timing", opt.timing);
    report.setConfig("shards", static_cast<uint64_t>(opt.shards));
    const std::string w = trace->name();

    bool verified = true;
    FrontendStats stats;
    if (opt.shards > 0) {
        const ShardedAccuracyResult sharded = runAccuracySharded(
            trace, config, {.shards = opt.shards}, fe);
        stats = sharded.stats;
        printAccuracy(stats);
        printProofs(sharded.shards, sharded.verified());
        verified = sharded.verified();
        report.addWorkloadValue(w, "checkpoint_bytes",
                                sharded.checkpointBytes);
    } else {
        stats = runAccuracyStreaming(trace, config, fe);
        printAccuracy(stats);
    }
    report.addWorkloadValue(w, "instructions", stats.instructions);
    report.addWorkloadValue(w, "indirect_miss_rate",
                            stats.indirectJumps.missRate(), 6);
    report.addWorkloadValue(w, "mpki", stats.mpki(), 4);

    if (opt.timing) {
        CoreResult result;
        if (opt.shards > 0) {
            const ShardedTimingResult sharded = runTimingSharded(
                trace, config, {.shards = opt.shards}, {}, fe);
            result = sharded.result;
            std::printf("\ntiming         : %s cycles, IPC %.2f\n",
                        formatCount(result.cycles).c_str(),
                        result.ipc());
            printProofs(sharded.shards, sharded.verified());
            verified = verified && sharded.verified();
        } else {
            result = runTimingStreaming(trace, config, {}, fe);
            std::printf("\ntiming         : %s cycles, IPC %.2f\n",
                        formatCount(result.cycles).c_str(),
                        result.ipc());
        }
        report.addWorkloadValue(w, "cycles", result.cycles);
        report.addWorkloadValue(w, "ipc", result.ipc(), 4);
    }
    report.addWorkloadValue(w, "verified",
                            static_cast<uint64_t>(verified ? 1 : 0));

    if (!run.reportPath.empty()) {
        report.captureProcess();
        report.write(run.reportPath);
        std::printf("\nwrote report to %s\n", run.reportPath.c_str());
    }
    return verified ? 0 : 1;
}

/** The --tune path: hand off to the autotuner engine, same shared
 *  option vocabulary (--ops becomes the full rung budget). */
int
runTune(const Options &opt, const RunOptions &run)
{
    const tune::ConfigSpace space =
        tune::enumerateSpace(opt.tuneSpace);
    tune::TuneOptions topt;
    topt.fullOps = run.ops;
    topt.seed = opt.seed;
    const tune::TuneResult result =
        tune::runSuccessiveHalving(space, topt);

    std::printf("space: %s, %zu configs\n\nsearch trajectory:\n%s",
                space.name.c_str(), space.candidates.size(),
                tune::renderRungTable(result).c_str());
    std::printf("\naggregate frontier (miss rate vs storage bits):\n%s",
                tune::renderFrontierTable(result.aggregateFrontier)
                    .c_str());

    if (!run.reportPath.empty()) {
        obs::RunReport report =
            tune::makeTuneReport("tpredsim", space, topt, result);
        report.setRuntimeInfo("jobs", defaultJobs());
        report.captureProcess();
        report.write(run.reportPath);
        std::printf("\nwrote report to %s\n", run.reportPath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Shared vocabulary first (consumes its flags), tool flags after.
    const RunOptions run = RunOptions::fromEnvAndArgv(
        argc, argv, /*fallback_ops=*/1'000'000,
        /*positional_ops=*/false);
    try {
        const Options opt = parse(argc, argv);
        if (opt.listWorkloads) {
            listWorkloads();
            return 0;
        }

        // Fail loud (usage status) on unknown spaces before any work.
        if (!opt.tuneSpace.empty() &&
            !tune::isSpaceName(opt.tuneSpace)) {
            std::fprintf(stderr, "tpredsim: unknown tune space '%s'\n",
                         opt.tuneSpace.c_str());
            return 2;
        }
        // Same for workload names, unless a trace file replaces the
        // generator entirely.
        if (opt.loadTrace.empty() && opt.loadSegmented.empty() &&
            !isKnownWorkload(opt.workload)) {
            std::fprintf(stderr,
                         "tpredsim: unknown workload '%s' "
                         "(--list-workloads shows the registry)\n",
                         opt.workload.c_str());
            return 2;
        }
        run.apply();

        if (!opt.tuneSpace.empty())
            return runTune(opt, run);

        if (!opt.loadSegmented.empty())
            return runSegmented(opt, run);

        SharedTrace trace = [&] {
            if (!opt.loadTrace.empty()) {
                std::string name;
                CompactTrace loaded =
                    loadCompactTraceFile(opt.loadTrace, name);
                if (loaded.size() > run.ops) {
                    // Honour --ops as a cap on replayed trace files.
                    std::vector<MicroOp> ops = loaded.decodeAll();
                    ops.resize(run.ops);
                    return SharedTrace(std::move(ops), name);
                }
                return SharedTrace(
                    std::make_shared<const CompactTrace>(
                        std::move(loaded)),
                    name);
            }
            // Routed through the cache so an attached corpus (via
            // --corpus or $TPRED_CORPUS_DIR) is consulted/populated.
            return cachedTrace(opt.workload, run.ops, opt.seed);
        }();
        std::printf("trace: %s, %s instructions\n", trace.name().c_str(),
                    formatCount(trace.size()).c_str());

        if (!opt.saveTrace.empty()) {
            saveTraceFile(opt.saveTrace, trace.compact(),
                          trace.name());
            std::printf("saved trace to %s\n", opt.saveTrace.c_str());
        }

        const IndirectConfig config = configFor(opt);
        FrontendConfig fe;
        if (opt.twoBitBtb)
            fe = twoBitBtbFrontend();

        std::printf("predictor: %s\n\n", config.describe().c_str());

        FrontendStats stats = runAccuracy(trace, config, fe);
        std::printf("indirect jumps : %s, miss rate %s\n",
                    formatCount(stats.indirectJumps.total()).c_str(),
                    formatPercent(stats.indirectJumps.missRate(), 2)
                        .c_str());
        std::printf("cond direction : miss rate %s\n",
                    formatPercent(stats.condDirection.missRate(), 2)
                        .c_str());
        std::printf("returns        : miss rate %s\n",
                    formatPercent(stats.returns.missRate(), 2).c_str());
        std::printf("all branches   : %.2f MPKI\n", stats.mpki());

        obs::RunReport report("tpredsim");
        report.setConfig("workload", trace.name());
        report.setConfig("ops", static_cast<uint64_t>(run.ops));
        report.setConfig("seed", opt.seed);
        report.setConfig("predictor", config.describe());
        report.setConfig("timing", opt.timing);
        const std::string &w = trace.name();
        report.addWorkloadValue(w, "instructions",
                                stats.instructions);
        report.addWorkloadValue(w, "indirect_jumps",
                                stats.indirectJumps.total());
        report.addWorkloadValue(w, "indirect_miss_rate",
                                stats.indirectJumps.missRate(), 6);
        report.addWorkloadValue(w, "cond_miss_rate",
                                stats.condDirection.missRate(), 6);
        report.addWorkloadValue(w, "return_miss_rate",
                                stats.returns.missRate(), 6);
        report.addWorkloadValue(w, "mpki", stats.mpki(), 4);

        if (opt.timing) {
            // Baseline and configured runs are independent: shard
            // them across the runner (results keyed by job index).
            const ParallelRunner runner;
            const auto timings = runner.map<CoreResult>(
                2, [&](size_t i) {
                    return runTiming(trace,
                                     i == 0 ? baselineConfig()
                                            : config,
                                     {}, fe);
                });
            const CoreResult &base = timings[0];
            const CoreResult &result = timings[1];
            report.addWorkloadValue(w, "cycles", result.cycles);
            report.addWorkloadValue(w, "baseline_cycles",
                                    base.cycles);
            report.addWorkloadValue(w, "ipc", result.ipc(), 4);
            report.addWorkloadValue(
                w, "exec_time_reduction",
                execTimeReduction(base.cycles, result.cycles), 6);
            std::printf("\ntiming         : %s cycles, IPC %.2f\n",
                        formatCount(result.cycles).c_str(),
                        result.ipc());
            std::printf("indirect stalls: %s cycles (%s of total)\n",
                        formatCount(result.indirectStallCycles())
                            .c_str(),
                        formatPercent(
                            result.cycles
                                ? static_cast<double>(
                                      result.indirectStallCycles()) /
                                      static_cast<double>(result.cycles)
                                : 0.0,
                            1)
                            .c_str());
            std::printf("vs BTB baseline: %s reduction in execution "
                        "time\n",
                        formatPercent(execTimeReduction(base.cycles,
                                                        result.cycles),
                                      2)
                            .c_str());
        }

        if (opt.sites > 0) {
            SiteReport sites = analyzeSites(trace, config, fe);
            const std::string rendered = sites.render(opt.sites);
            report.addTable("top_sites", rendered);
            std::printf("\ntop mispredicting sites:\n%s",
                        rendered.c_str());
        }

        if (!run.reportPath.empty()) {
            report.setRuntimeInfo("jobs", defaultJobs());
            report.captureProcess();
            report.write(run.reportPath);
            std::printf("\nwrote report to %s\n",
                        run.reportPath.c_str());
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tpredsim: %s\n", e.what());
        return 1;
    }
}
