/**
 * @file
 * tpredtune — successive-halving autotuner over predictor config
 * spaces, reporting accuracy-per-bit Pareto frontiers.
 *
 *   tpredtune --space smoke
 *   tpredtune --space standard --ops 500000 --jobs 8
 *   tpredtune --space tiny --exhaustive --report tune.json
 *   tpredtune --space bench --workloads gcc,perl,xlisp --rungs 3
 *   tpredtune --list-spaces
 */

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "harness/parallel_runner.hh"
#include "harness/run_options.hh"
#include "tune/config_space.hh"
#include "tune/successive_halving.hh"
#include "tune/tune_report.hh"
#include "workloads/workload.hh"

using namespace tpred;

namespace
{

/** Tool-specific options; the shared vocabulary (--ops, --jobs,
 *  --corpus, --report, --verbose) is consumed by RunOptions first. */
struct Options
{
    std::string space = "smoke";
    std::string workloads;  ///< comma-separated; empty = headline
    unsigned rungs = 4;
    unsigned eta = 4;
    size_t minSurvivors = 8;
    size_t cap = tune::kDefaultSpaceCap;
    uint64_t seed = 1;
    bool exhaustive = false;
    bool listSpaces = false;
    bool listWorkloads = false;
};

[[noreturn]] void
usage()
{
    std::puts(
        "tpredtune — successive-halving predictor autotuner\n"
        "\n"
        "  --space NAME        preset config space        [smoke]\n"
        "                      (see --list-spaces)\n"
        "  --list-spaces       print the preset spaces and exit\n"
        "  --ops N             full-budget trace length   [2000000]\n"
        "  --rungs N           halving rungs (1 = exhaustive)  [4]\n"
        "  --eta N             budget growth / promotion divisor [4]\n"
        "  --min-survivors N   promotion floor per rung   [8]\n"
        "  --cap N             hard candidate cap         [4096]\n"
        "  --seed N            workload seed              [1]\n"
        "  --workloads A,B     workload classes searched  [gcc,perl]\n"
        "  --list-workloads    list registered workloads and exit\n"
        "  --exhaustive        evaluate every candidate at the full\n"
        "                      budget (reference mode)\n"
        "  --jobs N            worker threads for parallel runs\n"
        "                      [hardware concurrency]\n"
        "  --corpus DIR        persistent trace corpus directory\n"
        "  --report FILE       write a tpred-tune-report/1 JSON file\n"
        "  --verbose           log cache/corpus traffic to stderr\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--space")
            opt.space = need(i);
        else if (arg == "--list-spaces")
            opt.listSpaces = true;
        else if (arg == "--rungs")
            opt.rungs = static_cast<unsigned>(std::atoi(need(i)));
        else if (arg == "--eta")
            opt.eta = static_cast<unsigned>(std::atoi(need(i)));
        else if (arg == "--min-survivors")
            opt.minSurvivors =
                static_cast<size_t>(std::atoll(need(i)));
        else if (arg == "--cap")
            opt.cap = static_cast<size_t>(std::atoll(need(i)));
        else if (arg == "--seed")
            opt.seed = static_cast<uint64_t>(std::atoll(need(i)));
        else if (arg == "--workloads")
            opt.workloads = need(i);
        else if (arg == "--exhaustive")
            opt.exhaustive = true;
        else if (arg == "--list-workloads")
            opt.listWorkloads = true;
        else
            usage();
    }
    return opt;
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= text.size()) {
        const size_t comma = text.find(',', start);
        const size_t end = comma == std::string::npos ? text.size()
                                                      : comma;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    // Shared vocabulary first (consumes its flags), tool flags after.
    const RunOptions run = RunOptions::fromEnvAndArgv(
        argc, argv, /*fallback_ops=*/tpred::kDefaultAccuracyOps,
        /*positional_ops=*/false);
    const Options opt = parse(argc, argv);

    if (opt.listSpaces) {
        for (const std::string &name : tune::spaceNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (opt.listWorkloads) {
        for (const WorkloadInfo &info : workloadRegistry())
            std::printf("%-16s %s\n", info.name.c_str(),
                        info.description.c_str());
        return 0;
    }
    // Fail loud on unknown spaces with the usage exit status, before
    // any expensive work.
    if (!tune::isSpaceName(opt.space)) {
        std::fprintf(stderr,
                     "tpredtune: unknown space '%s' (have:",
                     opt.space.c_str());
        for (const std::string &name : tune::spaceNames())
            std::fprintf(stderr, " %s", name.c_str());
        std::fprintf(stderr, ")\n");
        return 2;
    }
    // Unknown workloads fail the same way: usage status, before any
    // traces are recorded.
    for (const std::string &name : splitCommas(opt.workloads)) {
        if (!isKnownWorkload(name)) {
            std::fprintf(stderr,
                         "tpredtune: unknown workload '%s' "
                         "(--list-workloads shows the registry)\n",
                         name.c_str());
            return 2;
        }
    }

    try {
        run.apply();

        const tune::ConfigSpace space =
            tune::enumerateSpace(opt.space, opt.cap);
        tune::TuneOptions topt;
        topt.fullOps = run.ops;
        topt.rungs = opt.exhaustive ? 1 : opt.rungs;
        topt.eta = opt.eta;
        topt.minSurvivors = opt.minSurvivors;
        topt.seed = opt.seed;
        topt.workloads = splitCommas(opt.workloads);

        std::printf("space: %s, %zu configs", space.name.c_str(),
                    space.candidates.size());
        if (space.truncated() > 0)
            std::printf(" (truncated from %zu)", space.enumerated);
        std::printf("\n");

        const tune::TuneResult result =
            tune::runSuccessiveHalving(space, topt);

        std::printf("workloads: ");
        for (size_t w = 0; w < result.workloads.size(); ++w)
            std::printf("%s%s", w ? "," : "",
                        result.workloads[w].c_str());
        std::printf("\n\nsearch trajectory:\n%s",
                    tune::renderRungTable(result).c_str());
        std::printf("\naggregate frontier (miss rate vs storage "
                    "bits):\n%s",
                    tune::renderFrontierTable(result.aggregateFrontier)
                        .c_str());
        std::printf("\nevaluations: %s total, %s at full budget "
                    "(exhaustive would pay %s; %s saved)\n",
                    formatCount(result.evals).c_str(),
                    formatCount(result.fullEvals).c_str(),
                    formatCount(result.exhaustiveEvals).c_str(),
                    formatCount(result.evalsSaved()).c_str());

        if (!run.reportPath.empty()) {
            obs::RunReport report = tune::makeTuneReport(
                "tpredtune", space, topt, result);
            report.setRuntimeInfo("jobs", defaultJobs());
            report.captureProcess();
            report.write(run.reportPath);
            std::printf("\nwrote report to %s\n",
                        run.reportPath.c_str());
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tpredtune: %s\n", e.what());
        return 1;
    }
}
